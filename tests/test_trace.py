"""Trace container, statistics and on-disk formats."""

from repro.memtrace.access import MemoryAccess
from repro.memtrace.trace import Trace, interleave


def make_trace(n=100, name="t"):
    trace = Trace(name)
    for i in range(n):
        trace.append(MemoryAccess(pc=0x400 + (i % 4) * 8,
                                  address=0x10000 + i * 64,
                                  is_write=(i % 5 == 0), gap=i % 9))
    return trace


class TestContainer:
    def test_len_iter_getitem(self):
        trace = make_trace(10)
        assert len(trace) == 10
        assert list(trace)[3] == trace[3]

    def test_instruction_count(self):
        trace = Trace("t")
        trace.append(MemoryAccess(pc=1, address=64, gap=9))
        trace.append(MemoryAccess(pc=1, address=128, gap=0))
        assert trace.instruction_count == 11

    def test_unique_counts(self):
        trace = Trace("t")
        for _ in range(3):
            trace.append(MemoryAccess(pc=1, address=0x40))
        trace.append(MemoryAccess(pc=1, address=0x5000))
        assert trace.unique_cachelines() == 2
        assert trace.unique_regions() == 2
        assert trace.footprint_bytes() == 128

    def test_slice(self):
        trace = make_trace(10)
        sub = trace.slice(2, 5)
        assert len(sub) == 3
        assert sub[0] == trace[2]


class TestMPKI:
    def test_repeating_accesses_have_low_mpki(self):
        trace = Trace("hot")
        for i in range(5000):
            trace.append(MemoryAccess(pc=1, address=(i % 8) * 64, gap=10))
        assert trace.estimated_mpki() < 1.0

    def test_streaming_accesses_have_high_mpki(self):
        trace = Trace("cold")
        for i in range(5000):
            trace.append(MemoryAccess(pc=1, address=i * 64, gap=10))
        assert trace.estimated_mpki() > 20

    def test_class_boundaries(self):
        trace = Trace("x")
        assert trace.mpki_class(7.0) == "low"
        assert trace.mpki_class(15.0) == "medium"
        assert trace.mpki_class(25.0) == "high"


class TestIO:
    def test_binary_roundtrip(self, tmp_path):
        trace = make_trace(64)
        path = tmp_path / "trace.bin"
        trace.save_binary(path)
        loaded = Trace.load_binary(path)
        assert loaded.name == trace.name
        assert loaded.accesses == trace.accesses

    def test_jsonl_roundtrip(self, tmp_path):
        trace = make_trace(32)
        path = tmp_path / "trace.jsonl"
        trace.save_jsonl(path)
        loaded = Trace.load_jsonl(path)
        assert loaded.accesses == trace.accesses

    def test_binary_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTATRACE" * 4)
        import pytest
        with pytest.raises(ValueError):
            Trace.load_binary(path)


class TestInterleave:
    def test_preserves_all_accesses(self):
        a, b = make_trace(30, "a"), make_trace(50, "b")
        mixed = interleave([a, b], chunk=8)
        assert len(mixed) == 80

    def test_round_robin_order(self):
        a = Trace("a")
        b = Trace("b")
        a.extend(MemoryAccess(pc=1, address=i * 64) for i in range(4))
        b.extend(MemoryAccess(pc=2, address=(100 + i) * 64) for i in range(4))
        mixed = interleave([a, b], chunk=2)
        pcs = [access.pc for access in mixed]
        assert pcs == [1, 1, 2, 2, 1, 1, 2, 2]


class TestRebase:
    def test_rebase_shifts_into_private_slot(self):
        from repro.memtrace.trace import rebase
        trace = make_trace(10)
        shifted = rebase(trace, slot=2)
        assert shifted.name.endswith("@2")
        offset = 3 << 44
        for original, moved in zip(trace.accesses, shifted.accesses):
            assert moved.address == original.address + offset
            assert moved.pc == original.pc
            assert moved.gap == original.gap

    def test_rebased_slots_never_alias(self):
        from repro.memtrace.trace import rebase
        trace = make_trace(50)
        a = {x.cacheline for x in rebase(trace, 0).accesses}
        b = {x.cacheline for x in rebase(trace, 1).accesses}
        assert not a & b
