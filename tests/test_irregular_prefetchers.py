"""GHB PC/DC and ISB — the Section VI-C related-work prefetchers."""

import numpy as np

from repro.prefetchers.base import NullSystemView
from repro.prefetchers.ghb import GHB
from repro.prefetchers.isb import ISB

VIEW = NullSystemView()


def feed(prefetcher, lines, pc=0x400):
    requests = []
    for line in lines:
        requests = prefetcher.on_access(pc, line * 64, 0.0, False, VIEW)
    return requests


class TestGHB:
    def test_delta_correlation_replays_following_deltas(self):
        ghb = GHB(degree=2)
        # Repeating delta sequence 1, 2, 5, 1, 2, 5 ...
        lines, current = [], 100
        for delta in [1, 2, 5] * 4:
            lines.append(current)
            current += delta
        requests = feed(ghb, lines)
        targets = {(r.address // 64) - lines[-1] for r in requests}
        # After the pair (1, 2) last time, 5 then 1 followed.
        assert 5 in targets

    def test_silent_without_pair_match(self):
        ghb = GHB()
        rng = np.random.default_rng(0)
        requests = feed(ghb, [int(rng.integers(0, 1 << 20)) for _ in range(20)])
        assert requests == []

    def test_chains_are_per_pc(self):
        ghb = GHB(degree=1)
        feed(ghb, [100, 101, 102, 103, 104, 105, 106], pc=0x400)
        # A different PC has its own (empty) chain.
        requests = feed(ghb, [500], pc=0x999)
        assert requests == []

    def test_buffer_recycles_without_error(self):
        ghb = GHB(buffer_entries=8)
        feed(ghb, list(range(100, 200)))  # far beyond buffer capacity


class TestISB:
    def test_linearises_pointer_chase(self):
        """A fixed irregular traversal becomes prefetchable on repeat."""
        isb = ISB(degree=1)
        chase = [9000, 123, 77777, 4242, 31415, 2718]
        feed(isb, chase)          # first pass: learn structural ordering
        requests = isb.on_access(0x400, chase[0] * 64, 0.0, False, VIEW)
        assert requests
        assert requests[0].address // 64 == chase[1]

    def test_degree_walks_structural_successors(self):
        isb = ISB(degree=3)
        chase = [11, 222, 3333, 44444, 555555]
        feed(isb, chase)
        requests = isb.on_access(0x400, chase[1] * 64, 0.0, False, VIEW)
        assert [r.address // 64 for r in requests] == chase[2:5]

    def test_map_capacity_bounded(self):
        isb = ISB(map_entries=64)
        feed(isb, list(range(1000, 1500)))
        assert len(isb._ps) <= 64

    def test_unknown_line_gives_nothing_forward(self):
        isb = ISB()
        requests = isb.on_access(0x400, 0x123400, 0.0, False, VIEW)
        assert requests == []


class TestInSimulator:
    def test_isb_beats_spatial_prefetchers_on_repeated_chase(self):
        """The Section VI-C niche: repeated irregular traversals."""
        from dataclasses import replace

        from repro.memtrace.access import MemoryAccess
        from repro.memtrace.trace import Trace
        from repro.prefetchers.pmp import PMP
        from repro.sim.engine import simulate
        from repro.sim.params import SystemConfig

        rng = np.random.default_rng(1)
        order = rng.permutation(3000)  # a fixed pointer chain, far apart
        trace = Trace("chase-loop")
        for _ in range(6):             # traverse the same chain repeatedly
            for index in order:
                trace.append(MemoryAccess(pc=0x400,
                                          address=(1 << 30) + int(index) * 64 * 131,
                                          gap=40))
        # Shrink the hierarchy so the chain does not fit on chip.
        config = SystemConfig.default()
        config = replace(
            config,
            l2c=replace(config.l2c, size_bytes=32 * 1024, ways=8),
            llc=replace(config.llc, size_bytes=128 * 1024, ways=16))
        base = simulate(trace, config=config)
        isb = simulate(trace, ISB(degree=4), config=config)
        pmp = simulate(trace, PMP(), config=config)
        assert isb.nipc(base) > 1.02
        assert isb.nipc(base) > pmp.nipc(base)
