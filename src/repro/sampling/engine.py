"""Sampled execution: simulate representatives, extrapolate the rest.

:func:`simulate_sampled` is the sampled counterpart of
:func:`repro.sim.engine.simulate` (which dispatches here when handed a
``sampling`` config).  The representative windows are *stitched* into
one continuous simulation in trace order: a single hierarchy, core and
prefetcher persist across segments, so the prefetcher keeps the
training it accumulated on earlier representatives exactly as it would
in a full run — the dominant fidelity term for a learning prefetcher.
Each segment replays its configured warmup-prefix windows first (stats
discarded, re-warming cache recency after the skip) and then measures
its representative window via a stats reset/snapshot pair, the same
boundary discipline the full engine uses at its warmup boundary.

Measured counters are then scaled by ``cluster weight / representative
length`` and summed into one estimated
:class:`~repro.sim.stats.SimResult`, whose ``sampling`` attachment
records the plan shape, the executed-access fraction, and per-metric
error bars derived from the cluster dispersions.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields

from ..memtrace.trace import Trace
from ..prefetchers.base import NoPrefetcher, Prefetcher
from ..sim.params import SystemConfig
from ..sim.stats import LevelStats, SimResult, snapshot_level
from .config import SamplingConfig
from .plan import RepresentativeWindow, SamplingPlan, build_plan

_LEVEL_FIELDS = tuple(f.name for f in dataclass_fields(LevelStats))


def simulate_sampled(trace: Trace, prefetcher: Prefetcher | None = None,
                     config: SystemConfig | None = None,
                     warmup_fraction: float = 0.2,
                     sampling: SamplingConfig | None = None,
                     trace_events: bool = False,
                     check_invariants: bool | None = None,
                     fastpath: bool = True) -> SimResult:
    """Run one trace sampled; returns the extrapolated estimate.

    Traces too short to window fall back to a full simulation whose
    result carries ``sampling["fallback"]`` explaining why — callers
    never need to special-case tiny inputs.
    """
    if prefetcher is None:
        prefetcher = NoPrefetcher()
    if config is None:
        config = SystemConfig.default()
    sampling = sampling or SamplingConfig()

    plan = build_plan(trace, warmup_fraction, sampling)
    if plan.fallback is not None:
        from ..sim.engine import simulate  # runtime import: engine dispatches here

        result = simulate(trace, prefetcher, config, warmup_fraction,
                          trace_events=trace_events,
                          check_invariants=check_invariants,
                          fastpath=fastpath)
        result.sampling = {"config": sampling.to_dict(),
                           "fallback": plan.fallback}
        return result

    measurements = _simulate_stitched(trace, prefetcher, config, plan,
                                      trace_events=trace_events,
                                      check_invariants=check_invariants,
                                      fastpath=fastpath)
    return extrapolate(trace, prefetcher, plan, measurements, sampling)


def _simulate_stitched(
        trace: Trace, prefetcher: Prefetcher, config: SystemConfig,
        plan: SamplingPlan, *, trace_events: bool,
        check_invariants: bool | None, fastpath: bool,
) -> list[tuple[RepresentativeWindow, SimResult]]:
    """One continuous run over the plan's segments, in trace order.

    Mirrors the full engine's access loop (fast path, warmup-boundary
    stats reset, end-of-run drain/flush) but jumps from one segment's
    end to the next segment's prefix start instead of walking the whole
    trace.  Interior segment boundaries snapshot without draining —
    in-flight accounting resolves during the next segment's discarded
    prefix; only the final segment gets the full end-of-run drain and
    prefetch-accounting flush, exactly like the full engine.
    """
    from ..sim.core import Core
    from ..sim.fastpath import MIN_RUN, FastPath
    from ..sim.hierarchy import Hierarchy
    from ..sim.invariants import InvariantAuditor, audit_requested
    from ..sim.observers import EventTrace

    hierarchy = Hierarchy.build(config, prefetcher)
    tracer = EventTrace(hierarchy.bus) if trace_events else None
    auditor = (InvariantAuditor(hierarchy)
               if audit_requested(check_invariants) else None)
    core = Core(config.core)
    accesses = trace.accesses
    scanner = (FastPath(trace, hierarchy, core, prefetcher)
               if fastpath and prefetcher.supports_hit_runs
               and len(trace) >= MIN_RUN else None)

    advance = core.advance
    begin_load = core.begin_load
    finish_load = core.finish_load
    set_view_cycle = hierarchy.set_view_cycle
    demand_access = hierarchy.demand_access
    issue_prefetch = hierarchy.issue_prefetch
    on_access = prefetcher.on_access
    try_run = scanner.try_run if scanner is not None else None

    ordered = sorted(plan.representatives, key=lambda rep: rep.start)
    measurements = []
    for position, rep in enumerate(ordered):
        start_instr = core.instructions
        start_cycle = core.cycle
        index = rep.prefix_start
        while index < rep.end:
            if index == rep.start:
                hierarchy.reset_stats()
                if tracer is not None:
                    tracer.reset()
                if auditor is not None:
                    auditor.on_reset()
                start_instr = core.instructions
                start_cycle = core.cycle

            if try_run is not None:
                # A block must never span the measurement boundary: the
                # stats it reconciles in one step have to land entirely
                # on one side of the reset above.
                retired = try_run(index,
                                  rep.start if index < rep.start else rep.end)
                if retired:
                    index += retired
                    continue

            access = accesses[index]
            index += 1
            if access.gap:
                advance(access.gap)
            issue_cycle = begin_load()
            set_view_cycle(issue_cycle)
            latency, l1_hit = demand_access(access.address, issue_cycle,
                                            access.is_write)
            finish_load(latency)

            requests = on_access(access.pc, access.address,
                                 issue_cycle, l1_hit, hierarchy)
            for request in requests:
                issue_prefetch(request, issue_cycle)
            if auditor is not None:
                auditor.checkpoint(issue_cycle)

        if position == len(ordered) - 1:
            core.drain()
            hierarchy.flush_accounting(core.cycle)
            if auditor is not None:
                auditor.finalize(core.cycle)

        measurements.append((rep, SimResult(
            trace_name=f"{trace.name}[{rep.start}:{rep.end})",
            prefetcher_name=prefetcher.name,
            instructions=core.instructions - start_instr,
            cycles=core.cycle - start_cycle,
            levels={
                "l1d": snapshot_level(hierarchy.l1d.stats),
                "l2c": snapshot_level(hierarchy.l2c.stats),
                "llc": snapshot_level(hierarchy.llc.stats),
            },
            dram_demand_requests=hierarchy.dram.stats.demand_requests,
            dram_prefetch_requests=hierarchy.dram.stats.prefetch_requests,
            dram_writeback_requests=hierarchy.dram.stats.writeback_requests,
            issued_prefetches=dict(hierarchy.issued_prefetches),
            dropped_prefetches=hierarchy.dropped_prefetches,
            event_counters=(tracer.counter_snapshot()
                            if tracer is not None else None),
        )))
    return measurements


def _merge_scaled_counters(totals: dict, counters: dict,
                           factor: float) -> None:
    """Accumulate one segment's event counters, scaled, into ``totals``."""
    for kind, per_component in counters.items():
        bucket = totals.setdefault(kind, {})
        for component, count in per_component.items():
            bucket[component] = bucket.get(component, 0.0) + count * factor


def extrapolate(trace: Trace, prefetcher: Prefetcher, plan: SamplingPlan,
                measurements: list[tuple[RepresentativeWindow, SimResult]],
                sampling: SamplingConfig) -> SimResult:
    """Scale each representative's measured counters by its cluster
    weight and sum into one full-run estimate."""
    if len(measurements) != len(plan.representatives):
        raise ValueError("one measurement per representative required")

    instructions = 0.0
    cycles = 0.0
    levels = {name: dict.fromkeys(_LEVEL_FIELDS, 0.0)
              for name in ("l1d", "l2c", "llc")}
    dram = dict.fromkeys(
        ("demand_requests", "prefetch_requests", "writeback_requests"), 0.0)
    issued: dict = {}
    dropped = 0.0
    event_totals: dict = {}

    for rep, result in measurements:
        factor = rep.weight / rep.accesses
        instructions += result.instructions * factor
        cycles += result.cycles * factor
        for name, stats in result.levels.items():
            bucket = levels[name]
            for field in _LEVEL_FIELDS:
                bucket[field] += getattr(stats, field) * factor
        dram["demand_requests"] += result.dram_demand_requests * factor
        dram["prefetch_requests"] += result.dram_prefetch_requests * factor
        dram["writeback_requests"] += result.dram_writeback_requests * factor
        for level, count in result.issued_prefetches.items():
            issued[level] = issued.get(level, 0.0) + count * factor
        dropped += result.dropped_prefetches * factor
        if result.event_counters:
            _merge_scaled_counters(event_totals, result.event_counters,
                                   factor)

    dispersion = plan.weighted_dispersion
    estimate = SimResult(
        trace_name=trace.name,
        prefetcher_name=prefetcher.name,
        instructions=int(round(instructions)),
        cycles=cycles,
        levels={name: LevelStats(**{field: int(round(value))
                                    for field, value in bucket.items()})
                for name, bucket in levels.items()},
        dram_demand_requests=int(round(dram["demand_requests"])),
        dram_prefetch_requests=int(round(dram["prefetch_requests"])),
        dram_writeback_requests=int(round(dram["writeback_requests"])),
        issued_prefetches={level: int(round(count))
                           for level, count in issued.items()},
        dropped_prefetches=int(round(dropped)),
        event_counters={kind: {component: int(round(count))
                               for component, count in per.items()}
                        for kind, per in event_totals.items()}
        if event_totals else None,
    )
    estimate.sampling = {
        "config": sampling.to_dict(),
        "windows": len(plan.bounds),
        "window_accesses": plan.window_accesses,
        "clusters": plan.clustering.clusters,
        "total_accesses": plan.total,
        "measured_accesses": plan.measured,
        "simulated_accesses": plan.simulated_accesses,
        "fraction_simulated": round(plan.fraction_simulated, 6),
        "weighted_dispersion": round(dispersion, 6),
        # Heuristic ± bars: the weighted signature dispersion is the
        # relative uncertainty proxy (a cluster whose members sit on its
        # representative contributes none); `sample validate` calibrates
        # the proxy against measured NIPC error on the golden traces.
        "error_bars": {
            "relative": round(dispersion, 6),
            "ipc": round(estimate.ipc * dispersion, 6),
            "dram_requests": round(estimate.dram_requests * dispersion, 3),
            "l1d_demand_misses": round(
                estimate.levels["l1d"].demand_misses * dispersion, 3),
        },
    }
    return estimate
