"""Multi-core simulation: private L1D/L2C per core, shared LLC and DRAM.

Cores run their own traces and prefetchers; the driver always advances the
core whose clock is furthest behind, so shared-resource contention (LLC
capacity, inclusive back-invalidations, DRAM channel queueing) emerges
from interleaved timing rather than being modelled statistically.  This is
the substrate for Fig 13 (homogeneous 125-trace runs and the Table VII
heterogeneous MPKI mixes).

Stats boundaries are two-level.  Each lane clears its *private* counters
(L1D/L2C, prefetch accounting) when it crosses its own warmup boundary;
the *shared* counters (LLC storage block, DRAM hardware totals) plus every
lane's attribution views (LLC mirror, DRAM port) are cleared exactly once,
when the last lane crosses.  An earlier version called the full
``reset_stats()`` per lane, which wiped the shared LLC/DRAM counters
mid-measurement for every core that had already started measuring — and
each lane then reported the *shared* DRAM totals as its own traffic.  Now
per-core results report the lane's attributed deltas, which sum to the
shared hardware totals over the common measurement window.
"""

from __future__ import annotations

import heapq
from typing import Callable, Sequence

from ..memtrace.trace import Trace
from ..prefetchers.base import NoPrefetcher, Prefetcher
from .cache import Cache
from .core import Core
from .dram import Dram
from .hierarchy import Hierarchy, SharedLLC
from .invariants import InvariantAuditor, audit_requested
from .params import SystemConfig
from .stats import SimResult, geomean, snapshot_level

PrefetcherFactory = Callable[[], Prefetcher]


class _CoreLane:
    """One core's trace cursor, core model, prefetcher and hierarchy."""

    def __init__(self, core_id: int, trace: Trace, prefetcher: Prefetcher,
                 config: SystemConfig, shared_llc: SharedLLC, dram: Dram,
                 warmup_end: int) -> None:
        self.core_id = core_id
        self.trace = trace
        self.prefetcher = prefetcher
        self.hierarchy = Hierarchy(config, prefetcher, shared_llc, dram, core_id)
        self.core = Core(config.core)
        self.auditor: InvariantAuditor | None = None
        self.index = 0
        self.warmup_end = warmup_end
        self.measured_start_instr = 0
        self.measured_start_cycle = 0.0

    @property
    def done(self) -> bool:
        """True when this core has consumed its whole trace."""
        return self.index >= len(self.trace)

    def step(self) -> bool:
        """Process this core's next access; True when this step crossed
        the lane's warmup boundary."""
        crossed = False
        if self.index == self.warmup_end:
            # Only this lane's private counters: the shared LLC/DRAM
            # blocks belong to the global measurement boundary.
            self.hierarchy.reset_private_stats()
            if self.auditor is not None:
                self.auditor.on_reset_private()
            self.measured_start_instr = self.core.instructions
            self.measured_start_cycle = self.core.cycle
            crossed = True
        access = self.trace.accesses[self.index]
        self.index += 1
        if access.gap:
            self.core.advance(access.gap)
        issue_cycle = self.core.begin_load()
        self.hierarchy.set_view_cycle(issue_cycle)
        latency, l1_hit = self.hierarchy.demand_access(access.address,
                                                       issue_cycle,
                                                       access.is_write)
        self.core.finish_load(latency)
        requests = self.prefetcher.on_access(access.pc, access.address,
                                             issue_cycle, l1_hit, self.hierarchy)
        for request in requests:
            self.hierarchy.issue_prefetch(request, issue_cycle)
        if self.auditor is not None:
            self.auditor.checkpoint(issue_cycle)
        return crossed

    def result(self) -> SimResult:
        """Drain the core and snapshot its SimResult.

        Shared-resource numbers are this lane's *attributed* views — the
        LLC mirror its own accesses incremented and the DRAM port its
        hierarchy issued through — not the shared hardware totals.
        """
        self.core.drain()
        final_cycle = self.core.cycle
        self.hierarchy.flush_accounting(final_cycle)
        if self.auditor is not None:
            self.auditor.finalize(final_cycle)
        port_stats = self.hierarchy.dram_port.stats
        return SimResult(
            trace_name=self.trace.name,
            prefetcher_name=self.prefetcher.name,
            instructions=self.core.instructions - self.measured_start_instr,
            cycles=self.core.cycle - self.measured_start_cycle,
            levels={
                "l1d": snapshot_level(self.hierarchy.l1d.stats),
                "l2c": snapshot_level(self.hierarchy.l2c.stats),
                "llc": snapshot_level(self.hierarchy.llc_stats),
            },
            dram_demand_requests=port_stats.demand_requests,
            dram_prefetch_requests=port_stats.prefetch_requests,
            dram_writeback_requests=port_stats.writeback_requests,
            issued_prefetches=dict(self.hierarchy.issued_prefetches),
            dropped_prefetches=self.hierarchy.dropped_prefetches,
        )


def _warmup_ends(traces: Sequence[Trace],
                 warmup_fraction: float | Sequence[float]) -> list[int]:
    """Per-lane warmup boundaries from a shared or per-lane fraction."""
    if isinstance(warmup_fraction, (int, float)):
        fractions = [float(warmup_fraction)] * len(traces)
    else:
        fractions = [float(f) for f in warmup_fraction]
        if len(fractions) != len(traces):
            raise ValueError(
                f"{len(fractions)} warmup fractions for {len(traces)} traces")
    return [int(len(trace) * fraction)
            for trace, fraction in zip(traces, fractions)]


def _open_measurement(lanes: Sequence[_CoreLane], shared: SharedLLC,
                      dram: Dram) -> None:
    """The global measurement boundary: clear the shared hardware
    counters and every lane's attribution views together, so per-core
    deltas sum to the shared totals from here on."""
    shared.cache.stats.reset()
    dram.stats.reset()
    for lane in lanes:
        lane.hierarchy.reset_shared_attribution()
        if lane.auditor is not None:
            lane.auditor.on_reset_shared_attribution()


def simulate_multicore(traces: Sequence[Trace],
                       prefetcher_factory: PrefetcherFactory | None = None,
                       config: SystemConfig | None = None,
                       warmup_fraction: float | Sequence[float] = 0.2,
                       check_invariants: bool | None = None) -> list[SimResult]:
    """Run N traces on N cores sharing an LLC and DRAM channels.

    Returns one :class:`SimResult` per core (trace order preserved),
    reporting each core's *attributed* share of the shared LLC and DRAM
    traffic.  ``warmup_fraction`` may be one fraction for every lane or
    a per-lane sequence (heterogeneous mixes warm up at different
    rates).  ``check_invariants`` attaches one
    :class:`~repro.sim.invariants.InvariantAuditor` per core, cross-wired
    so back-invalidations from other cores' accesses are tracked too;
    ``None`` defers to ``REPRO_CHECK_INVARIANTS``.
    """
    if config is None:
        config = SystemConfig.default().for_multicore(len(traces))
    if prefetcher_factory is None:
        prefetcher_factory = NoPrefetcher

    shared = SharedLLC(Cache(config.llc, name="LLC"))
    dram = Dram(config.dram)
    warmup_ends = _warmup_ends(traces, warmup_fraction)
    lanes = [
        _CoreLane(i, trace, prefetcher_factory(), config, shared, dram,
                  warmup_end=warmup_ends[i])
        for i, trace in enumerate(traces)
    ]
    if audit_requested(check_invariants):
        for lane in lanes:
            lane.auditor = InvariantAuditor(lane.hierarchy)
        for lane in lanes:
            for other in lanes:
                if other is not lane:
                    lane.auditor.watch_remote_bus(other.hierarchy.bus)

    # Lanes that still have to cross their warmup boundary before the
    # global measurement window opens.  A zero-length warmup crosses on
    # the lane's first step; an empty trace never steps at all.
    pending_warmup = {lane.core_id for lane in lanes if not lane.done}
    if not pending_warmup:
        _open_measurement(lanes, shared, dram)

    # Advance the core that is furthest behind in time, so shared-resource
    # interleaving approximates concurrent execution.
    heap = [(lane.core.cycle, lane.core_id) for lane in lanes]
    heapq.heapify(heap)
    while heap:
        _, core_id = heapq.heappop(heap)
        lane = lanes[core_id]
        if lane.done:
            continue
        crossed = lane.step()
        if core_id in pending_warmup and (crossed or lane.done):
            # A lane whose trace ends at or before its boundary stops
            # gating the window when it finishes.
            pending_warmup.discard(core_id)
            if not pending_warmup:
                _open_measurement(lanes, shared, dram)
        if not lane.done:
            heapq.heappush(heap, (lane.core.cycle, core_id))

    return [lane.result() for lane in lanes]


def multicore_speedup(results: Sequence[SimResult],
                      baselines: Sequence[SimResult]) -> float:
    """Geomean of per-core NIPC — the Fig 13 aggregate."""
    return geomean([r.nipc(b) for r, b in zip(results, baselines)])
