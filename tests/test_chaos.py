"""Fault-injection tests for the engine's recovery paths.

Every recovery scenario asserts the same contract: faults perturb the
*machinery* (workers hang, die, or raise; cache bytes rot; the process
is interrupted) while the recovered run's numbers stay **bit-identical**
to a clean run's — plus the manifest/counter accounting that makes the
recovery visible after the fact.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from tests.chaos import ChaosRaise, FaultyPrefetcher, corrupt_cache_entry
from repro.experiments.cache import ResultCache
from repro.experiments.faults import (CHAOS_DIR_ENV, CHAOS_MODES_ENV,
                                      CHAOS_RATE_ENV, CHAOS_SEED_ENV,
                                      BatchFailed, RunInterrupted, chaos_plan)
from repro.experiments.journal import RunJournal
from repro.experiments.runner import SuiteRunner
from repro.memtrace.workloads import quick_suite
from repro.prefetchers.pmp import PMP

SPECS = quick_suite()[:2]
ACCESSES = 3_000


def result_dicts(results):
    return [r.to_dict() for r in results]


@pytest.fixture(scope="module")
def clean_outcome():
    """Unfaulted FaultyPrefetcher run — the bit-identical reference."""
    runner = SuiteRunner(specs=SPECS, accesses=ACCESSES)
    return result_dicts(runner.run(lambda: FaultyPrefetcher(mode="none")))


class TestHungWorker:
    def test_timeout_then_retry_is_bit_identical(self, tmp_path,
                                                 clean_outcome):
        """Watchdog kills the stuck pool; the retried job completes clean."""
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES, workers=2,
                             job_timeout=1.0)
        runner.engine.policy.sleep = lambda _s: None
        results = runner.run(lambda: FaultyPrefetcher(
            mode="hang", latch_dir=tmp_path, hang_seconds=30.0))
        assert result_dicts(results) == clean_outcome
        counters = runner.engine.counters
        assert counters.timed_out >= 1
        assert counters.retried >= 1
        assert counters.pool_rebuilds >= 1
        assert counters.failed == 0

    def test_watchdog_reports_in_manifest(self, tmp_path):
        runner = SuiteRunner(specs=SPECS[:1], accesses=ACCESSES, workers=2,
                             job_timeout=120.0)
        runner.run(PMP)
        manifest = runner.manifest("unit")
        assert manifest.timed_out == 0  # nothing tripped with a lazy budget
        assert manifest.failed == 0


class TestCrashedPool:
    def test_pool_rebuilds_with_backoff_and_matches_clean_run(
            self, tmp_path, clean_outcome):
        sleeps: list[float] = []
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES, workers=2)
        runner.engine.policy.sleep = sleeps.append
        results = runner.run(lambda: FaultyPrefetcher(
            mode="crash", latch_dir=tmp_path))
        assert result_dicts(results) == clean_outcome
        counters = runner.engine.counters
        assert counters.pool_rebuilds >= 1
        assert counters.retried >= 1
        assert counters.failed == 0
        # The first rebuild waited exactly the base backoff.
        assert sleeps and sleeps[0] == runner.engine.policy.backoff_base
        assert sleeps == sorted(sleeps)  # backoff never shrinks


class TestDeterministicFailure:
    def test_raise_becomes_job_failure_not_retry(self, tmp_path):
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES, workers=2)
        with pytest.raises(BatchFailed) as excinfo:
            runner.run(lambda: FaultyPrefetcher(
                mode="raise", latch_dir=tmp_path))
        failures = excinfo.value.failures
        assert len(failures) == 1
        assert failures[0].kind == "raise"
        assert failures[0].error_type == "ChaosRaise"
        assert "chaos: injected deterministic failure" in failures[0].traceback
        # The batch still finished: every other job has a result.
        others = [r for i, r in enumerate(excinfo.value.results)
                  if i != failures[0].index]
        assert all(r is not None for r in others)
        counters = runner.engine.counters
        assert counters.failed == 1
        assert counters.retried == 0  # deterministic failures never retry
        manifest = runner.manifest("unit")
        assert manifest.failed == 1
        recorded = manifest.extra["fault_tolerance"]["failures"]
        assert recorded[0]["error_type"] == "ChaosRaise"

    def test_serial_raise_also_becomes_job_failure(self, tmp_path):
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES)
        with pytest.raises(BatchFailed) as excinfo:
            runner.run(lambda: FaultyPrefetcher(
                mode="raise", latch_dir=tmp_path, only_in_worker=False))
        assert len(excinfo.value.failures) == 1
        assert runner.engine.counters.simulated == len(SPECS) - 1

    def test_fail_fast_propagates_original_exception(self, tmp_path):
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES, workers=2,
                             fail_fast=True)
        with pytest.raises(ChaosRaise):
            runner.run(lambda: FaultyPrefetcher(
                mode="raise", latch_dir=tmp_path))


class TestInterruptAndResume:
    def test_request_stop_then_resume_is_bit_identical(self, tmp_path):
        factories = {"pmp": PMP,
                     "faulty-clean": lambda: FaultyPrefetcher(mode="none")}
        clean = SuiteRunner(specs=SPECS, accesses=ACCESSES).matrix(factories)

        journal = RunJournal(tmp_path / "runs", "resume-test")
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES, journal=journal)
        recorded = journal.record_done

        def stop_after_two(key, result):
            recorded(key, result)
            if journal.completed == 2:
                runner.engine.request_stop()

        journal.record_done = stop_after_two
        with pytest.raises(RunInterrupted) as excinfo:
            runner.matrix(factories)
        assert excinfo.value.completed == 2
        assert excinfo.value.remaining == 2
        assert "--resume resume-test" in str(excinfo.value)
        journal.close()

        reopened = RunJournal(tmp_path / "runs", "resume-test")
        assert reopened.completed == 2
        resumed = SuiteRunner(specs=SPECS, accesses=ACCESSES,
                              journal=reopened)
        matrix = resumed.matrix(factories)
        assert resumed.engine.counters.journal_replayed == 2
        assert resumed.engine.counters.simulated == 2
        for name in factories:
            assert result_dicts(matrix[name]) == result_dicts(clean[name])
        reopened.close()

    @pytest.mark.slow
    def test_cli_sigint_then_resume_reproduces_clean_run(self, tmp_path):
        """Kill a real `pmp-repro` mid-suite; --resume matches a clean run."""
        env = {**os.environ, "PYTHONPATH": "src"}

        def report_lines(stdout: str) -> list[str]:
            # Drop the bracketed status lines (run ids, timings, paths).
            return [line for line in stdout.splitlines()
                    if line and not line.startswith("[")]

        base = ["fig9", "--traces", "2", "--accesses", "6000",
                "--workers", "2"]
        clean = subprocess.run(
            [sys.executable, "-m", "repro", *base,
             "--cache-dir", str(tmp_path / "clean")],
            capture_output=True, text=True, env=env, cwd="/root/repo",
            timeout=600)
        assert clean.returncode == 0, clean.stderr

        cache_dir = tmp_path / "interrupted"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *base, "--run-id", "sigint-test",
             "--cache-dir", str(cache_dir)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env, cwd="/root/repo")
        journal_path = cache_dir / "runs" / "sigint-test" / "journal.jsonl"
        deadline = time.monotonic() + 120
        # Interrupt as soon as at least one job is journaled.
        while time.monotonic() < deadline:
            if journal_path.exists() and journal_path.stat().st_size > 0:
                break
            if proc.poll() is not None:
                pytest.fail(f"run finished before it could be interrupted:\n"
                            f"{proc.communicate()[1]}")
            time.sleep(0.05)
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 130, (stdout, stderr)
        assert "--resume sigint-test" in stderr

        resumed = subprocess.run(
            [sys.executable, "-m", "repro", *base,
             "--resume", "sigint-test", "--cache-dir", str(cache_dir)],
            capture_output=True, text=True, env=env, cwd="/root/repo",
            timeout=600)
        assert resumed.returncode == 0, resumed.stderr
        assert "[resuming run sigint-test:" in resumed.stdout
        assert report_lines(resumed.stdout) == report_lines(clean.stdout)

        # The resumed run's manifest records the journal replays.
        manifests = sorted((cache_dir / "manifests").glob("fig9-*.json"))
        last = json.loads(manifests[-1].read_text())
        replayed = last["extra"]["fault_tolerance"]["journal_replayed"]
        assert replayed >= 1


class TestCacheCorruption:
    def test_quarantined_entry_resimulates_cleanly(self, tmp_path):
        cold = SuiteRunner(specs=SPECS[:1], accesses=ACCESSES,
                           cache=tmp_path / "cache")
        first = result_dicts(cold.run(PMP))
        entry = next(cold.cache.results_dir.glob("*.json"))
        corrupt_cache_entry(entry, how="flip-payload")

        warm_cache = ResultCache(tmp_path / "cache")
        warm = SuiteRunner(specs=SPECS[:1], accesses=ACCESSES,
                           cache=warm_cache)
        again = result_dicts(warm.run(PMP))
        assert again == first
        assert warm_cache.corrupt == 1
        assert warm_cache.corrupt_events[0]["key"] == entry.stem
        # The corrupt bytes moved aside for autopsy, not deleted.
        assert (warm_cache.quarantine_dir / entry.name).exists()
        manifest = warm.manifest("unit")
        assert manifest.quarantined == 1
        events = manifest.extra["fault_tolerance"]["quarantine_events"]
        assert events[0]["reason"].startswith("CorruptCacheEntry")

    @pytest.mark.parametrize("how", ["truncate", "garbage"])
    def test_unparseable_entries_also_quarantine(self, tmp_path, how):
        cache = ResultCache(tmp_path)
        first = result_dicts(SuiteRunner(specs=SPECS[:1], accesses=ACCESSES,
                                         cache=cache).run(PMP))
        corrupt_cache_entry(next(cache.results_dir.glob("*.json")), how=how)
        rerun_cache = ResultCache(tmp_path)
        again = result_dicts(SuiteRunner(specs=SPECS[:1], accesses=ACCESSES,
                                         cache=rerun_cache).run(PMP))
        assert again == first
        assert rerun_cache.corrupt == 1


class TestEnvKnobChaos:
    """The env-driven injector CI uses (REPRO_CHAOS_*)."""

    def test_chaos_plan_is_deterministic(self, monkeypatch):
        monkeypatch.setenv(CHAOS_SEED_ENV, "7")
        monkeypatch.setenv(CHAOS_RATE_ENV, "1.0")
        monkeypatch.setenv(CHAOS_MODES_ENV, "hang,crash")
        assert chaos_plan("some-job-key") == chaos_plan("some-job-key")
        monkeypatch.setenv(CHAOS_RATE_ENV, "0.0")
        assert chaos_plan("some-job-key") is None

    def test_env_chaos_crash_run_matches_clean_run(self, tmp_path,
                                                   monkeypatch,
                                                   clean_outcome):
        monkeypatch.setenv(CHAOS_SEED_ENV, "7")
        monkeypatch.setenv(CHAOS_RATE_ENV, "1.0")
        monkeypatch.setenv(CHAOS_MODES_ENV, "crash")
        monkeypatch.setenv(CHAOS_DIR_ENV, str(tmp_path / "chaos"))
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES, workers=2)
        runner.engine.policy.sleep = lambda _s: None
        results = runner.run(lambda: FaultyPrefetcher(mode="none"))
        assert result_dicts(results) == clean_outcome
        counters = runner.engine.counters
        assert counters.pool_rebuilds >= 1
        assert counters.retried >= 2  # every job crashed once, then ran clean
        assert counters.failed == 0
