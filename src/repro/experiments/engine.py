"""Parallel, cached, fault-tolerant execution engine for ``simulate()`` batches.

The engine turns an experiment matrix (traces × prefetcher configs ×
system configs) into a flat list of :class:`SimJob`s and executes them:

1. **Replay** — each job is content-hashed (see
   :mod:`repro.experiments.cache`); a journaled result from a resumed
   run, or a checksummed cache entry, returns without simulating.
2. **Fan-out** — remaining jobs run serially (``workers <= 1``) or on a
   :class:`~concurrent.futures.ProcessPoolExecutor` with a sliding
   submission window.  Results are placed back by job index, and every
   job's prefetcher instance is constructed in the parent *in job order*
   before dispatch, so parallel runs are bit-identical to serial runs
   regardless of completion order.
3. **Write-back** — each result is persisted to the cache *and* the run
   journal the moment its job completes (not at batch end), so a crash
   or SIGINT loses at most the jobs in flight.

Fault tolerance (see :mod:`repro.experiments.faults` for the taxonomy):

* a **watchdog** enforces ``FaultPolicy.job_timeout`` per job, measured
  from when the job starts on a worker; an overdue job's pool is killed
  (stuck workers are terminated, not abandoned) and the job retries on a
  fresh pool, up to ``max_attempts``;
* a **pool crash** (``BrokenProcessPool`` after a worker segfault/OOM
  kill) rebuilds the pool with bounded exponential backoff and
  resubmits the unfinished jobs; after ``max_pool_rebuilds`` the
  remainder degrades — loudly, counted in the manifest — to in-process
  execution;
* a job that cannot be **pickled** falls back to in-process execution,
  as before;
* a **deterministic exception** inside ``simulate()`` never retries: it
  becomes a structured :class:`JobFailure` carrying the original worker
  traceback, and the batch finishes before raising :class:`BatchFailed`
  (or raises immediately under ``fail_fast``).

``request_stop()`` (wired to SIGINT/SIGTERM by the CLI) stops the batch
at the next completion boundary, flushes the journal and raises
:class:`RunInterrupted` with the run id to ``--resume``.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor, Future,
                                ProcessPoolExecutor)
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..memtrace.trace import Trace, TraceArrays
from ..prefetchers.base import Prefetcher
from ..sampling.config import SamplingConfig
from ..sim.engine import simulate
from ..sim.invariants import audit_requested
from ..sim.observers import merge_counter_snapshots
from ..sim.params import SystemConfig
from ..sim.stats import SimResult
from .cache import CACHE_VERSION, ResultCache, fingerprint, prefetcher_fingerprint
from .faults import (KIND_POOL_CRASH, KIND_RAISE, KIND_TIMEOUT, BatchFailed,
                     FaultPolicy, JobFailure, JobTimeout, RunInterrupted,
                     RemoteJobError, chaos_enabled, failure_from_exception,
                     has_remote_traceback, maybe_inject_chaos)
from .journal import RunJournal

if TYPE_CHECKING:  # imported lazily at runtime (repro.fabric imports us)
    from ..fabric.lease import FabricConfig

log = logging.getLogger("repro.experiments.engine")


@dataclass
class SimJob:
    """One (trace, fresh prefetcher, config) simulation to run."""

    trace: Trace
    prefetcher: Prefetcher
    config: SystemConfig
    warmup_fraction: float = 0.2
    trace_events: bool = False
    # Attach the invariant auditor to this run.  Deliberately NOT part of
    # key(): auditing is pure observation (results are identical with it
    # on or off), so audited and unaudited runs share cache entries.
    check_invariants: bool = False
    # Batch ordinary L1-hit runs through the vectorized fast path.  Also
    # NOT part of key(): results are bit-identical in both modes (the
    # differential suite pins this), so fastpath-on and --no-fastpath
    # runs share cache entries.
    fastpath: bool = True
    # Sampled execution (repro.sampling).  Unlike fastpath this IS part
    # of key() when enabled: sampled results are estimates, so they must
    # never alias exact results — or results sampled with other knobs.
    sampling: SamplingConfig | None = None

    def key(self) -> str:
        """Content hash identifying this job's result.

        ``trace_events`` salts the key only when on, so every result
        cached before the observer existed stays valid for untraced runs
        (traced results carry extra payload and must not alias them).
        ``sampling`` salts the key with its full knob fingerprint, again
        only when enabled, for the same backwards-compatibility reason.
        """
        parts = [
            CACHE_VERSION,
            self.trace.content_hash(),
            prefetcher_fingerprint(self.prefetcher),
            self.config.fingerprint(),
            repr(self.warmup_fraction),
        ]
        if self.trace_events:
            parts.append("trace-events")
        if self.sampling is not None and self.sampling.enabled:
            parts.append(self.sampling.fingerprint())
        return fingerprint(parts)


def _simulate_payload(name: str, family: str, seed: int, arrays: TraceArrays,
                      prefetcher: Prefetcher, config: SystemConfig,
                      warmup_fraction: float,
                      trace_events: bool = False,
                      check_invariants: bool = False,
                      fastpath: bool = True,
                      sampling: SamplingConfig | None = None,
                      chaos_key: str | None = None) -> SimResult:
    """Worker entry point: rebuild the trace and run one simulation."""
    maybe_inject_chaos(chaos_key)
    trace = Trace.from_arrays(name, arrays, family=family, seed=seed)
    return simulate(trace, prefetcher, config, warmup_fraction,
                    trace_events=trace_events,
                    check_invariants=check_invariants or None,
                    fastpath=fastpath, sampling=sampling)


@dataclass
class EngineCounters:
    """What the engine did so far (feeds the run manifest)."""

    jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Completed simulations only — a failed or timed-out job does not
    #: count until (unless) an attempt actually produces a result.
    simulated: int = 0
    # Simulations that ran with the invariant auditor attached (a cache
    # hit skips the simulation, so it is not an audited run).
    audited: int = 0
    batches: int = 0
    wall_seconds: float = 0.0
    # ---- fault-tolerance accounting ----
    #: Jobs that ended as structured JobFailure records.
    failed: int = 0
    #: Job executions re-run because of a transport fault (timeout or
    #: pool crash) — includes innocent jobs resubmitted when their pool
    #: died under them.
    retried: int = 0
    #: Watchdog deadline expiries (one per overdue attempt).
    timed_out: int = 0
    #: Fresh pools built after a crash or a watchdog kill.
    pool_rebuilds: int = 0
    #: Jobs replayed from a resumed run's journal.
    journal_replayed: int = 0
    #: Jobs executed in-process because they could not cross the process
    #: boundary (pickling) or the pool-rebuild budget was exhausted —
    #: or, in fabric mode, because every worker died (graceful
    #: degradation claims the remainder as "broker-inline").
    inline_fallbacks: int = 0
    # ---- fabric (lease-based distribution) accounting ----
    #: Claimed leases reaped because their heartbeat went stale (one per
    #: expiry, so a job can contribute several).
    lease_expired: int = 0
    #: Expired leases republished at a bumped epoch for another worker.
    lease_reassigned: int = 0
    #: Jobs completed by external fabric workers (not inline fallback).
    fabric_completed: int = 0
    # Accumulated {event: {component: count}} from jobs that ran with
    # trace_events on (cache hits included — traced results round-trip
    # their counters through the cache).
    event_totals: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = {
            "jobs": self.jobs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated": self.simulated,
            "audited": self.audited,
            "batches": self.batches,
            "wall_seconds": self.wall_seconds,
            "failed": self.failed,
            "retried": self.retried,
            "timed_out": self.timed_out,
            "pool_rebuilds": self.pool_rebuilds,
            "journal_replayed": self.journal_replayed,
            "inline_fallbacks": self.inline_fallbacks,
            "lease_expired": self.lease_expired,
            "lease_reassigned": self.lease_reassigned,
            "fabric_completed": self.fabric_completed,
        }
        if self.event_totals:
            data["event_counters"] = self.event_totals
        return data


@dataclass
class _WorkItem:
    """One pending job plus everything needed to (re)submit it."""

    index: int
    job: SimJob
    key: str | None
    payload: tuple
    attempts: int = 0


@dataclass
class ExperimentEngine:
    """Runs :class:`SimJob` batches with workers, caching and fault recovery."""

    workers: int = 0
    cache: ResultCache | None = None
    counters: EngineCounters = field(default_factory=EngineCounters)
    policy: FaultPolicy = field(default_factory=FaultPolicy)
    journal: RunJournal | None = None
    #: Lease-based distributed execution (repro.fabric).  When set, the
    #: batch is published as durable leases under the journal's run
    #: directory and external ``pmp-repro fabric worker`` processes do
    #: the simulating; requires ``journal``.
    fabric: "FabricConfig | None" = None
    #: JobFailure records accumulated across batches (manifest fodder).
    failures: list[JobFailure] = field(default_factory=list)
    #: Worker census of the last fabric batch (manifest fodder).
    fabric_census: list = field(default_factory=list, init=False, repr=False)
    _stop: bool = field(default=False, init=False, repr=False)

    def request_stop(self) -> None:
        """Stop at the next completion boundary (signal-handler safe)."""
        self._stop = True

    @property
    def stop_requested(self) -> bool:
        return self._stop

    def run_jobs(self, jobs: list[SimJob]) -> list[SimResult]:
        """Execute a batch; results align with ``jobs`` by index.

        Raises :class:`BatchFailed` after the batch completes if any job
        failed deterministically (immediately under ``fail_fast``), and
        :class:`RunInterrupted` when stopped — in both cases every
        completed result is already cached and journaled.
        """
        start = time.perf_counter()
        failures_before = len(self.failures)
        results: list[SimResult | None] = [None] * len(jobs)
        pending: list[tuple[int, SimJob, str | None]] = []
        need_key = (self.cache is not None or self.journal is not None
                    or self.fabric is not None or chaos_enabled())
        for index, job in enumerate(jobs):
            key = job.key() if need_key else None
            if self.journal is not None and key is not None:
                replayed = self.journal.lookup(key)
                if replayed is not None:
                    results[index] = replayed
                    self.counters.journal_replayed += 1
                    continue
            if self.cache is not None:
                cached = self.cache.get(key)
                if cached is not None:
                    results[index] = cached
                    self.counters.cache_hits += 1
                    continue
                self.counters.cache_misses += 1
            pending.append((index, job, key))

        try:
            if pending:
                if self.fabric is not None:
                    self._run_fabric(pending, results)
                elif self.workers > 1 and len(pending) > 1:
                    self._run_parallel(pending, results)
                else:
                    self._run_serial(pending, results)
        except KeyboardInterrupt:
            # Bare Ctrl+C without the CLI's signal handler installed:
            # flush what completed and surface the resume hint.
            self._flush_journal()
            raise self._interrupted(results) from None
        finally:
            for result in results:
                if result is not None and result.event_counters:
                    merge_counter_snapshots(self.counters.event_totals,
                                            result.event_counters)
            self.counters.jobs += len(jobs)
            self.counters.batches += 1
            self.counters.wall_seconds += time.perf_counter() - start

        new_failures = self.failures[failures_before:]
        if new_failures:
            raise BatchFailed(new_failures, results)
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------ job plumbing

    def _complete(self, results: list, item: _WorkItem,
                  result: SimResult) -> None:
        """One job finished: place, count, cache and journal its result."""
        results[item.index] = result
        self.counters.simulated += 1
        if audit_requested(item.job.check_invariants or None):
            self.counters.audited += 1
        if self.cache is not None and item.key is not None:
            self.cache.put(item.key, result)
        if self.journal is not None and item.key is not None:
            self.journal.record_done(item.key, result)

    def _fail(self, item: _WorkItem, kind: str, exc: BaseException) -> None:
        """One job is conclusively lost: record a structured failure."""
        failure = failure_from_exception(
            item.index, item.key, item.job.trace.name,
            item.job.prefetcher.name, kind, exc,
            attempts=max(1, item.attempts))
        self._register_failure(failure, exc)

    def _register_failure(self, failure: JobFailure,
                          cause: BaseException | None) -> None:
        """Count, log and journal a structured failure (fabric brokers
        report failures in this form directly — the original exception
        object never crossed the filesystem)."""
        log.warning("job %d (%s/%s) failed [%s after %d attempt(s)]: %s",
                    failure.index, failure.trace_name,
                    failure.prefetcher_name, failure.kind, failure.attempts,
                    failure.message)
        self.counters.failed += 1
        self.failures.append(failure)
        if self.journal is not None:
            self.journal.record_failure(failure.key, failure)
        if self.policy.fail_fast:
            raise cause if cause is not None else RemoteJobError(
                f"{failure.error_type}: {failure.message}")

    def _flush_journal(self) -> None:
        if self.journal is not None:
            self.journal.flush()

    def _interrupted(self, results: list) -> RunInterrupted:
        remaining = sum(1 for r in results if r is None)
        return RunInterrupted(
            self.journal.run_id if self.journal is not None else None,
            completed=len(results) - remaining, remaining=remaining)

    def _simulate_inline(self, job: SimJob) -> SimResult:
        return simulate(job.trace, job.prefetcher, job.config,
                        job.warmup_fraction, trace_events=job.trace_events,
                        check_invariants=job.check_invariants or None,
                        fastpath=job.fastpath, sampling=job.sampling)

    # ------------------------------------------------------------- serial path

    def _run_serial(self, pending: list[tuple[int, SimJob, str | None]],
                    results: list[SimResult | None]) -> None:
        for index, job, key in pending:
            if self._stop:
                self._flush_journal()
                raise self._interrupted(results)
            item = _WorkItem(index, job, key, payload=(), attempts=1)
            try:
                result = self._simulate_inline(job)
            except Exception as exc:
                self._fail(item, KIND_RAISE, exc)
                continue
            self._complete(results, item, result)

    # ------------------------------------------------------------- fabric path

    def _run_fabric(self, pending: list[tuple[int, SimJob, str | None]],
                    results: list[SimResult | None]) -> None:
        """Distribute pending jobs as durable leases (repro.fabric).

        The broker publishes every job under the journal's run directory
        and consumes completions back through the same ``_complete`` /
        ``_register_failure`` plumbing the in-process paths use, so
        caching, journaling and failure accounting are identical — and a
        fabric run's numbers are bit-identical to a serial run's.
        """
        from ..fabric.broker import FabricBroker
        from ..fabric.protocol import BATCH_PAUSED
        if self.journal is None:
            raise ValueError(
                "fabric execution requires a run journal (the lease "
                "directories live under the journal's run directory)")

        def inline(item: _WorkItem) -> dict | None:
            item.attempts += 1
            try:
                result = self._simulate_inline(item.job)
            except Exception as exc:
                self._fail(item, KIND_RAISE, exc)
                return None
            self._complete(results, item, result)
            return result.to_dict()

        broker = FabricBroker(
            run_dir=self.journal.directory, run_id=self.journal.run_id,
            config=self.fabric, policy=self.policy, counters=self.counters,
            on_result=lambda item, result: self._complete(
                results, item, result),
            on_failure=self._register_failure,
            inline=inline,
            should_stop=lambda: self._stop)
        try:
            status = broker.run(list(self._work_items(pending)))
        finally:
            self.fabric_census = broker.census_snapshot()
        if status == BATCH_PAUSED:
            self._flush_journal()
            raise self._interrupted(results)

    # ----------------------------------------------------------- parallel path

    def _work_items(self, pending) -> deque[_WorkItem]:
        items: deque[_WorkItem] = deque()
        for index, job, key in pending:
            pcs, addrs, writes, gaps = job.trace.to_arrays()
            payload = (job.trace.name, job.trace.family, job.trace.seed,
                       (np.asarray(pcs), np.asarray(addrs),
                        np.asarray(writes), np.asarray(gaps)),
                       job.prefetcher, job.config, job.warmup_fraction,
                       job.trace_events, job.check_invariants, job.fastpath,
                       job.sampling, key)
            items.append(_WorkItem(index, job, key, payload))
        return items

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down *now*, terminating stuck or orphaned workers.

        A plain ``shutdown()`` would wait for a hung worker forever (and
        the interpreter's atexit hook would block on it even with
        ``wait=False``), so the watchdog terminates the worker processes
        directly and then reaps them.
        """
        procs = getattr(pool, "_processes", None)
        processes = list(procs.values()) if procs else []
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass
        for proc in processes:
            try:
                proc.join(timeout=5)
            except Exception:
                pass

    def _run_parallel(self, pending: list[tuple[int, SimJob, str | None]],
                      results: list[SimResult | None]) -> None:
        """Fan pending jobs out over a watchdogged process pool.

        Submission is windowed to the pool size so a job's wall-clock
        budget starts when it actually starts executing; results land by
        index, preserving bit-identical ordering semantics.
        """
        policy = self.policy
        queue = self._work_items(pending)
        inline: list[_WorkItem] = []
        pool_size = max(1, min(self.workers, len(queue)))
        crash_rebuilds = 0
        pool: ProcessPoolExecutor | None = None
        active: dict[Future, _WorkItem] = {}
        deadlines: dict[Future, float] = {}

        def requeue_or_fail(item: _WorkItem, kind: str,
                            exc: BaseException) -> None:
            if item.attempts >= policy.max_attempts:
                self._fail(item, kind, exc)
            else:
                queue.append(item)
                self.counters.retried += 1

        def fresh_pool() -> ProcessPoolExecutor:
            self.counters.pool_rebuilds += 1
            return ProcessPoolExecutor(
                max_workers=max(1, min(pool_size, len(queue))))

        def handle_crash(exc: BaseException) -> None:
            """A worker death broke the pool: recover or degrade."""
            nonlocal pool, crash_rebuilds
            for item in list(active.values()):
                item.attempts += 1
                requeue_or_fail(item, KIND_POOL_CRASH, exc)
            active.clear()
            deadlines.clear()
            if pool is not None:
                self._kill_pool(pool)
                pool = None
            crash_rebuilds += 1
            if self._stop:
                return  # the loop raises RunInterrupted next iteration
            if crash_rebuilds > policy.max_pool_rebuilds:
                log.warning(
                    "pool crashed %d times; rebuild budget exhausted — "
                    "running the remaining %d job(s) in-process",
                    crash_rebuilds, len(queue))
                return  # pool stays None: the loop degrades to inline
            if queue:
                backoff = policy.backoff(crash_rebuilds)
                log.warning("pool crash (%s); rebuilding in %.2fs "
                            "(%d job(s) outstanding)",
                            type(exc).__name__, backoff, len(queue))
                policy.sleep(backoff)
                pool = fresh_pool()

        try:
            pool = ProcessPoolExecutor(max_workers=pool_size)
            while queue or active:
                if self._stop:
                    self._flush_journal()
                    raise self._interrupted(results)
                if pool is None:
                    # Rebuild budget exhausted: degrade the remainder to
                    # in-process execution (visible in the manifest).
                    self.counters.inline_fallbacks += len(queue)
                    inline.extend(queue)
                    queue.clear()
                    break
                # Keep the submission window full.
                broken_on_submit: BaseException | None = None
                while queue and len(active) < pool_size:
                    item = queue.popleft()
                    try:
                        fut = pool.submit(_simulate_payload, *item.payload)
                    except BrokenExecutor as exc:
                        queue.appendleft(item)
                        broken_on_submit = exc
                        break
                    except Exception:  # local submit-side failure: ship
                        inline.append(item)  # the job in-process instead
                        self.counters.inline_fallbacks += 1
                        continue
                    active[fut] = item
                    if policy.job_timeout:
                        deadlines[fut] = time.monotonic() + policy.job_timeout
                if broken_on_submit is not None:
                    handle_crash(broken_on_submit)
                    continue
                if not active:
                    continue

                wait_timeout = None
                if deadlines:
                    wait_timeout = max(
                        0.0, min(deadlines.values()) - time.monotonic())
                done, _ = futures_wait(set(active), timeout=wait_timeout,
                                       return_when=FIRST_COMPLETED)

                crashed: BaseException | None = None
                for fut in done:
                    item = active.pop(fut)
                    deadlines.pop(fut, None)
                    exc = fut.exception()
                    if exc is None:
                        self._complete(results, item, fut.result())
                    elif isinstance(exc, BrokenExecutor):
                        crashed = exc
                        item.attempts += 1
                        requeue_or_fail(item, KIND_POOL_CRASH, exc)
                    elif has_remote_traceback(exc):
                        item.attempts += 1
                        self._fail(item, KIND_RAISE, exc)
                    else:
                        # Local failure shipping the job (e.g. pickling):
                        # run it in-process, as the engine always has.
                        inline.append(item)
                        self.counters.inline_fallbacks += 1

                if crashed is not None:
                    handle_crash(crashed)
                    continue

                if deadlines:
                    now = time.monotonic()
                    overdue = [fut for fut, when in deadlines.items()
                               if when <= now]
                    if overdue:
                        for fut in overdue:
                            item = active.pop(fut)
                            deadlines.pop(fut, None)
                            self.counters.timed_out += 1
                            item.attempts += 1
                            log.warning(
                                "watchdog: job %d (%s/%s) exceeded %.1fs "
                                "(attempt %d)", item.index,
                                item.job.trace.name, item.job.prefetcher.name,
                                policy.job_timeout, item.attempts)
                            requeue_or_fail(item, KIND_TIMEOUT, JobTimeout(
                                f"job exceeded {policy.job_timeout:.1f}s "
                                f"wall-clock budget"))
                        # The stuck worker holds a pool slot hostage, so
                        # the pool is killed; innocents go back to the
                        # queue head and rerun on the fresh pool.
                        for item in active.values():
                            queue.appendleft(item)
                            self.counters.retried += 1
                        active.clear()
                        deadlines.clear()
                        self._kill_pool(pool)
                        pool = fresh_pool() if queue else None
                        if pool is None:
                            break
        finally:
            if pool is not None:
                self._kill_pool(pool)

        for item in inline:
            if self._stop:
                self._flush_journal()
                raise self._interrupted(results)
            item.attempts += 1
            try:
                result = self._simulate_inline(item.job)
            except Exception as exc:
                self._fail(item, KIND_RAISE, exc)
                continue
            self._complete(results, item, result)
