"""Pangloss — Markov-chain delta prefetcher (Papaphilippou, Kelly & Luk,
DPC3 / arXiv:1906.00877).

Pangloss approximates a Markov chain whose nodes are in-page cacheline
*deltas*: a **Delta Cache** stores, per observed delta, the next deltas
that followed it, each with a small saturating counter approximating the
transition probability; a **Page Cache** remembers the last offset seen
in each page so the next access's delta can be formed.  Prediction walks
the chain greedily — from the current delta take the most probable
successor, form the target offset, and continue from that successor —
issuing a deep sequence of prefetches per trigger.

Hardware budget (the paper's DPC3 L2 configuration, reproduced by
:func:`repro.storage.pangloss_budget`): Delta Cache 128 sets x 16 ways of
(delta tag, next delta, 5-bit NRU/probability counter) and Page Cache
256 sets x 12 ways of (page tag, last offset) — about 17.5KB total,
between DSPatch (3.6KB) and Pythia (25.5KB).

Placement note: the original trains on the L2 access stream, i.e. on L1
misses.  This port keeps that discipline at the repo's shared L1D
placement by training and predicting on L1D *misses* only — which also
makes the engine transparent to the hit-run fast path (an L1 hit
mutates nothing and returns nothing).
"""

from __future__ import annotations

from collections import OrderedDict

from ..memtrace.access import CACHELINE_BITS, lines_per_region
from .base import FillLevel, Prefetcher, PrefetchRequest, SystemView


class _DeltaRow:
    """One Markov node: successor deltas with probability counters."""

    __slots__ = ("counts", "total", "_ways")

    def __init__(self, ways: int) -> None:
        # OrderedDict keeps LRU order for way replacement; counters cap
        # the probability resolution like the paper's 5-bit NRU scheme.
        self.counts: OrderedDict[int, int] = OrderedDict()
        self.total = 0
        self._ways = ways

    def observe(self, next_delta: int, *, counter_max: int) -> None:
        count = self.counts.pop(next_delta, 0)
        if count == 0 and len(self.counts) >= self._ways:
            victim, victim_count = next(iter(self.counts.items()))
            del self.counts[victim]
            self.total -= victim_count
        self.counts[next_delta] = min(count + 1, counter_max)
        self.total += self.counts[next_delta] - count
        if self.total > counter_max * self._ways:
            # Periodic halving ages stale transitions out of the chain.
            self.total = 0
            for delta, value in self.counts.items():
                self.counts[delta] = value >> 1
                self.total += value >> 1

    def most_probable(self) -> tuple[int, float] | None:
        """The argmax successor and its transition probability."""
        if not self.counts or self.total <= 0:
            return None
        best_delta, best_count = max(self.counts.items(),
                                     key=lambda kv: (kv[1], -abs(kv[0])))
        return best_delta, best_count / self.total


class Pangloss(Prefetcher):
    """Markov-chain transition prefetcher over in-page deltas."""

    name = "pangloss"
    # Trains on the miss stream only (the original observes L2 accesses),
    # so an L1 hit is a guaranteed no-op — the fast path can batch hit
    # runs without calling into the prefetcher at all.
    supports_hit_runs = True
    hit_run_transparent = True

    def __init__(self, *, region_bytes: int = 4096, delta_sets: int = 128,
                 delta_ways: int = 16, page_entries: int = 256 * 12,
                 counter_max: int = 31, degree: int = 8,
                 probability_threshold: float = 1.0 / 3.0,
                 fill_level: FillLevel = FillLevel.L2C) -> None:
        self.region_bytes = region_bytes
        self.pattern_length = lines_per_region(region_bytes)
        self.delta_sets = delta_sets
        self.delta_ways = delta_ways
        self.page_entries = page_entries
        self.counter_max = counter_max
        self.degree = degree
        self.probability_threshold = probability_threshold
        self.fill_level = fill_level
        # delta -> Markov row.  Deltas range over +-(pattern_length - 1);
        # the set budget bounds how many distinct deltas hold rows.
        self._rows: OrderedDict[int, _DeltaRow] = OrderedDict()
        # page base -> (last offset, last delta or None).
        self._pages: OrderedDict[int, tuple[int, int | None]] = OrderedDict()
        self._region_mask = ~(region_bytes - 1)
        self._offset_mask = region_bytes - 1

    def _row(self, delta: int) -> _DeltaRow:
        row = self._rows.get(delta)
        if row is not None:
            self._rows.move_to_end(delta)
            return row
        if len(self._rows) >= self.delta_sets:
            self._rows.popitem(last=False)
        row = _DeltaRow(self.delta_ways)
        self._rows[delta] = row
        return row

    def on_access(self, pc: int, address: int, cycle: float, hit: bool,
                  view: SystemView) -> list[PrefetchRequest]:
        if hit:
            return []  # L2-placed design: only the miss stream is visible
        page = address & self._region_mask
        offset = (address & self._offset_mask) >> CACHELINE_BITS

        previous = self._pages.pop(page, None)
        if len(self._pages) >= self.page_entries:
            self._pages.popitem(last=False)
        delta: int | None = None
        if previous is not None:
            last_offset, last_delta = previous
            delta = offset - last_offset
            if delta == 0:
                delta = None
            elif last_delta is not None:
                # Record the Markov transition last_delta -> delta.
                self._row(last_delta).observe(delta,
                                              counter_max=self.counter_max)
        self._pages[page] = (offset, delta if delta is not None
                             else (previous[1] if previous else None))
        if delta is None:
            return []

        # Greedy chain walk: most-probable successor per step, stopping
        # when the probability mass thins out or the page ends.
        requests: list[PrefetchRequest] = []
        current_delta = delta
        current_offset = offset
        length = self.pattern_length
        seen_offsets = {offset}
        for _ in range(self.degree):
            row = self._rows.get(current_delta)
            if row is None:
                break
            self._rows.move_to_end(current_delta)
            best = row.most_probable()
            if best is None:
                break
            next_delta, probability = best
            if probability < self.probability_threshold:
                break
            target = current_offset + next_delta
            if not 0 <= target < length or target in seen_offsets:
                break
            seen_offsets.add(target)
            requests.append(PrefetchRequest(
                address=page + (target << CACHELINE_BITS),
                level=self.fill_level))
            current_offset = target
            current_delta = next_delta
        return requests
