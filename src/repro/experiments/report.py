"""Plain-text table and series formatting for experiment outputs.

Every experiment runner returns structured data and renders it through
these helpers so benchmark logs read like the paper's tables.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Monospace table with per-column width fitting."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def event_counter_report(totals: dict,
                         title: str = "Event counters") -> str:
    """Render an ``{event: {component: count}}`` table (EventTrace output).

    Accepts either one run's :meth:`EventTrace.counter_snapshot` or the
    engine's accumulated ``event_totals`` across a batch.
    """
    rows = [(kind, component, count)
            for kind, per_component in sorted(totals.items())
            for component, count in sorted(per_component.items())]
    if not rows:
        return f"{title}: (no events recorded)"
    return format_table(["event", "component", "count"], rows, title=title)


def format_series(name: str, points: Sequence[tuple[object, float]]) -> str:
    """One figure series as `name: x=y x=y ...`."""
    return f"{name}: " + " ".join(f"{x}={y:.3f}" for x, y in points)


def format_percent(value: float) -> str:
    """Format a fraction as a percentage with one decimal."""
    return f"{value * 100:.1f}%"
