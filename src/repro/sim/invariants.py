"""Opt-in invariant audit for the event-driven memory-system kernel.

The paper's headline results are *relative* comparisons across ten
prefetchers sharing this one kernel, so a single silent accounting bug
skews every curve at once.  :class:`InvariantAuditor` is a bus observer
(plus per-access checkpoints) that enforces the kernel's conservation
laws while a simulation runs and raises a structured
:class:`InvariantViolation` — carrying the cycle, level, line and the
last N events from a ring buffer — the moment one breaks, so failures
are debuggable without rerunning.

The audited laws (see ``docs/architecture.md`` for the full catalogue):

* **MSHR bounds** — occupancy never exceeds capacity, completion cycles
  stay finite (an infinite completion is a leaked entry), and the prune
  lower bound ``_mshr_min`` never over-estimates the true minimum.
* **Fill-queue coherence** — the readiness heap and the per-line index
  describe the same multiset of pending fills.
* **Inclusion** — every line resident in a private L1D/L2C is resident
  in the shared LLC or in flight to it, and a writeback that reaches
  DRAM never bypasses a still-resident lower-level copy.
* **Stats conservation** — every :class:`~repro.sim.cache.CacheStats`
  counter equals an independently event-derived shadow (so a stray
  reset, double count or missed event is caught), hits + misses equals
  accesses, and ``dropped_prefetches`` equals the sum of drop reasons.
* **Prefetched-bit census** — the number of resident prefetched bits per
  level equals fills minus (resident useful + useless) resolutions.
* **Dirty-line conservation** — a dirty line leaving a cache (capacity
  eviction or inclusive back-invalidation) must be absorbed by a level
  below or reach ``Dram.writeback``; this is the law the historical
  back-invalidation bug violated.
* **Shared-counter monotonicity** — shared LLC/DRAM hardware totals are
  never *below* any single core's attributed view (a mid-measurement
  reset of shared counters trips this immediately).
* **Flush timestamps** — end-of-run ``flushed`` events never claim a
  cycle earlier than the last demand access.

Auditing is opt-in (CLI ``--check-invariants``, the engine/``SimJob``
knob, or ``REPRO_CHECK_INVARIANTS=1`` for CI) and pure observation: an
audited run produces bit-identical results to an unaudited one.
"""

from __future__ import annotations

import math
import os
from collections import deque
from typing import TYPE_CHECKING, Iterable

from ..prefetchers.base import FillLevel
from .cache import CacheStats
from .events import (
    BackInvalidation,
    CacheAccess,
    EventBus,
    Eviction,
    HitRunRetired,
    PrefetchDropped,
    PrefetchFill,
    PrefetchIssued,
    PrefetchUseful,
    PrefetchUseless,
    Writeback,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .hierarchy import Hierarchy

ENV_FLAG = "REPRO_CHECK_INVARIANTS"

_STAT_FIELDS = tuple(CacheStats.__dataclass_fields__)


def audit_requested(explicit: bool | None = None) -> bool:
    """Resolve the audit knob: an explicit True/False wins, ``None``
    defers to the ``REPRO_CHECK_INVARIANTS`` environment variable (how
    CI turns the auditor on for every simulation it runs)."""
    if explicit is not None:
        return explicit
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class InvariantViolation(AssertionError):
    """A conservation law broke.

    Carries the law's name, the cycle/level/line it broke at, and the
    last events from the auditor's ring buffer so the failure is
    debuggable without rerunning the simulation.
    """

    def __init__(self, law: str, message: str, *, cycle: float = 0.0,
                 level: FillLevel | None = None, line: int | None = None,
                 recent_events: Iterable[tuple] = ()) -> None:
        self.law = law
        self.cycle = cycle
        self.level = level
        self.line = line
        self.recent_events = list(recent_events)
        where = f"cycle={cycle:.1f}"
        if level is not None:
            where += f", level={getattr(level, 'name', level)}"
        if line is not None:
            where += f", line={line:#x}"
        text = f"[{law}] {message} ({where})"
        if self.recent_events:
            rows = "\n".join(
                f"  {c:>12.1f}  {kind:<18} {self._component(comp):<6} "
                f"line={ln:#x} {extra}"
                for c, kind, comp, ln, extra in self.recent_events)
            text += f"\nlast {len(self.recent_events)} events:\n{rows}"
        super().__init__(text)

    @staticmethod
    def _component(component) -> str:
        return getattr(component, "name", None) or str(component)


class _BlockAudit:
    """One counter block under audit: the live block, its event-derived
    shadow, and the storage whose prefetched bits it accounts."""

    __slots__ = ("level", "actual", "shadow", "storage", "census",
                 "check_census")

    def __init__(self, level: FillLevel, actual: CacheStats, storage,
                 check_census: bool) -> None:
        self.level = level
        self.actual = actual
        self.shadow = CacheStats()
        self.storage = storage
        self.census = 0            # resident prefetched bits expected
        self.check_census = check_census


class InvariantAuditor:
    """Subscribes to one hierarchy's bus and audits the kernel's laws.

    ``checkpoint(cycle)`` is called once per demand access; cheap laws
    (dirty obligations) run every call, structural laws every
    ``checkpoint_every`` accesses, and cache-sized scans (inclusion,
    prefetched-bit census) every ``checkpoint_every * deep_every``
    accesses and at :meth:`finalize`.

    In shared-LLC multicore runs, create one auditor per hierarchy and
    cross-wire them with :meth:`watch_remote_bus` so back-invalidations
    published on *another* core's bus still update the owning core's
    shadows.  LLC census checks are skipped automatically when the LLC
    is shared (bits from other cores are indistinguishable).
    """

    def __init__(self, hierarchy: "Hierarchy", *, ring_size: int = 64,
                 checkpoint_every: int = 64, deep_every: int = 16,
                 exclusive_llc: bool | None = None) -> None:
        self.hierarchy = hierarchy
        self._ring: deque[tuple] = deque(maxlen=ring_size)
        # Bound append for the hot event handlers, which inline
        # :meth:`_record`'s body — the auditor fires on every kernel
        # event, so one saved method call per event is measurable.
        self._ring_append = self._ring.append
        self._every = max(1, checkpoint_every)
        self._deep_every = max(1, deep_every)
        if exclusive_llc is None:
            # Two registered private caches == this hierarchy's own pair.
            exclusive_llc = len(hierarchy.shared_llc._private) <= 2
        self._exclusive_llc = exclusive_llc

        self._blocks: dict[FillLevel, _BlockAudit] = {
            FillLevel.L1D: _BlockAudit(FillLevel.L1D, hierarchy.l1d.stats,
                                       hierarchy.l1d, True),
            FillLevel.L2C: _BlockAudit(FillLevel.L2C, hierarchy.l2c.stats,
                                       hierarchy.l2c, True),
            # The audited LLC block is this core's attributed mirror; the
            # shared storage block is covered by the monotonicity law.
            FillLevel.LLC: _BlockAudit(FillLevel.LLC, hierarchy.llc_stats,
                                       hierarchy.llc, exclusive_llc),
        }
        self._owned = {id(b.actual): b for b in self._blocks.values()}

        self._dirty_obligations: set[int] = set()
        self._issued = {level: 0 for level in FillLevel}
        self._dropped = 0
        self._drop_reasons: dict[str, int] = {}
        self._last_access_cycle = 0.0
        self._accesses = 0
        self.structural_audits = 0
        self.audited_events = 0

        self._detach: list = []
        bus = hierarchy.bus
        for event_type, handler in (
                (CacheAccess, self._on_access),
                (HitRunRetired, self._on_hit_run),
                (PrefetchFill, self._on_fill),
                (PrefetchUseful, self._on_useful),
                (PrefetchUseless, self._on_useless),
                (Eviction, self._on_eviction),
                (BackInvalidation, self._on_back_invalidation),
                (Writeback, self._on_writeback),
                (PrefetchIssued, self._on_issued),
                (PrefetchDropped, self._on_dropped)):
            self._detach.append(bus.subscribe(event_type, handler))

    # ------------------------------------------------------------- plumbing

    def detach(self) -> None:
        """Unsubscribe from every bus this auditor attached to."""
        for unsubscribe in self._detach:
            unsubscribe()
        self._detach.clear()

    def watch_remote_bus(self, bus: EventBus) -> None:
        """Track back-invalidations another core's accesses inflict on
        this core's private caches (shared-LLC multicore runs)."""
        self._detach.append(
            bus.subscribe(BackInvalidation, self._on_remote_back_invalidation))

    def _record(self, cycle: float, kind: str, component, line: int,
                extra: str = "") -> None:
        # Hot per-event handlers (_on_access, _on_fill, ...) inline this
        # two-line body against the bound ``_ring_append`` — keep them in
        # sync if the record shape changes.
        self.audited_events += 1
        self._ring.append((cycle, kind, component, line, extra))

    def _fail(self, law: str, message: str, *, cycle: float = 0.0,
              level: FillLevel | None = None,
              line: int | None = None) -> None:
        raise InvariantViolation(law, message, cycle=cycle, level=level,
                                 line=line, recent_events=tuple(self._ring))

    # ------------------------------------------------------ reset coupling

    def on_reset(self) -> None:
        """Mirror a full ``Hierarchy.reset_stats()`` (single-core warmup
        boundary).  Censuses survive: prefetched bits are physical state,
        not counters."""
        self.on_reset_private()
        self.on_reset_shared_attribution()

    def on_reset_private(self) -> None:
        """Mirror ``reset_private_stats()`` (a lane's own warmup boundary)."""
        self._blocks[FillLevel.L1D].shadow.reset()
        self._blocks[FillLevel.L2C].shadow.reset()
        self._issued = {level: 0 for level in FillLevel}
        self._dropped = 0
        self._drop_reasons = {}

    def on_reset_shared_attribution(self) -> None:
        """Mirror ``reset_shared_attribution()`` (the global boundary)."""
        self._blocks[FillLevel.LLC].shadow.reset()

    # ------------------------------------------------------- event shadows

    def _on_access(self, ev: CacheAccess) -> None:
        shadow = self._blocks[ev.level].shadow
        shadow.demand_accesses += 1
        if ev.hit:
            shadow.demand_hits += 1
        else:
            shadow.demand_misses += 1
        self.audited_events += 1
        self._ring_append((ev.cycle, "CacheAccess", ev.level, ev.line,
                           "hit" if ev.hit else "miss"))

    def _on_hit_run(self, ev: HitRunRetired) -> None:
        """Audit checkpoint at a fast-path block exit.

        A retired hit run is ``count`` demand hits the event kernel never
        saw individually: the shadow counters absorb the batch, the
        access clock advances by the whole block, and the structural laws
        run *now* — the block boundary is the fast path's checkpoint, so
        a broken block-exit reconciliation is caught before the next
        access executes.
        """
        shadow = self._blocks[ev.level].shadow
        shadow.demand_accesses += ev.count
        shadow.demand_hits += ev.count
        self._record(ev.cycle, "HitRunRetired", ev.level, int(ev.lines[-1]),
                     f"count={ev.count}")
        self._last_access_cycle = ev.cycle
        before = self._accesses
        self._accesses = before + ev.count
        if self._dirty_obligations:
            self._fail("dirty-conservation",
                       f"{len(self._dirty_obligations)} dirty victim(s) "
                       "outstanding at a fast-path block exit — a hit run "
                       "can never surrender a dirty line",
                       cycle=ev.cycle,
                       line=next(iter(self._dirty_obligations)))
        # Deep (cache-sized) scans keep their access-count cadence; the
        # structural pass runs at every block exit regardless.
        deep = (self._accesses // self._every != before // self._every
                and (self._accesses // self._every) % self._deep_every == 0)
        self.audit_now(ev.cycle, deep=deep)

    def _on_fill(self, ev: PrefetchFill) -> None:
        block = self._blocks[ev.level]
        block.shadow.prefetch_fills += 1
        block.census += 1
        self.audited_events += 1
        self._ring_append((ev.cycle, "PrefetchFill", ev.level, ev.line, ""))

    def _on_useful(self, ev: PrefetchUseful) -> None:
        block = self._blocks[ev.level]
        block.shadow.useful_prefetches += 1
        if ev.late:
            block.shadow.late_prefetch_hits += 1
        else:
            # A resident useful consumes one installed prefetched bit;
            # a late merge resolves a prefetch that never filled as one.
            block.census -= 1
        self.audited_events += 1
        self._ring_append((ev.cycle, "PrefetchUseful", ev.level, ev.line,
                           "late" if ev.late else ""))

    def _on_useless(self, ev: PrefetchUseless) -> None:
        if ev.reason == "flushed" and ev.cycle < self._last_access_cycle:
            self._fail(
                "flush-cycle",
                f"end-of-run flush stamped cycle {ev.cycle:.1f}, before the "
                f"last demand access at {self._last_access_cycle:.1f}",
                cycle=ev.cycle, level=ev.level, line=ev.line)
        block = self._blocks[ev.level]
        block.shadow.useless_prefetches += 1
        block.census -= 1
        self.audited_events += 1
        self._ring_append((ev.cycle, "PrefetchUseless", ev.level, ev.line,
                           ev.reason))

    def _on_eviction(self, ev: Eviction) -> None:
        self._blocks[ev.level].shadow.evictions += 1
        if ev.dirty:
            self._dirty_obligations.add(ev.line)
        self.audited_events += 1
        self._ring_append((ev.cycle, "Eviction", ev.level, ev.line,
                           "dirty" if ev.dirty else ""))

    def _apply_back_invalidation(self, ev: BackInvalidation) -> None:
        block = self._owned.get(id(ev.stats))
        if block is not None and ev.prefetched:
            block.shadow.useless_prefetches += 1
            block.census -= 1

    def _on_back_invalidation(self, ev: BackInvalidation) -> None:
        self._apply_back_invalidation(ev)
        if ev.dirty:
            # The dirty private data must reach DRAM (or a level that
            # still holds the line) before control returns to the core.
            self._dirty_obligations.add(ev.line)
        self._record(ev.cycle, "BackInvalidation", ev.cache_name, ev.line,
                     "dirty" if ev.dirty else "")

    def _on_remote_back_invalidation(self, ev: BackInvalidation) -> None:
        # Shadow/census only: the publishing core's auditor owns the
        # ring-buffer record and the dirty obligation (it sees the
        # writeback that discharges it on its own bus).
        self._apply_back_invalidation(ev)

    def _on_writeback(self, ev: Writeback) -> None:
        if ev.line in self._dirty_obligations:
            self._dirty_obligations.discard(ev.line)
        else:
            self._fail("dirty-conservation",
                       "writeback published for a line no dirty eviction "
                       "or back-invalidation surrendered",
                       cycle=ev.cycle, level=ev.level, line=ev.line)
        depth = ev.level - FillLevel.L1D
        lower = self.hierarchy.levels[depth + 1:]
        if ev.absorbed:
            holder = next((lvl.storage.probe(ev.line) for lvl in lower
                           if lvl.storage.contains(ev.line)), None)
            if holder is None or not holder.dirty:
                self._fail("dirty-conservation",
                           "writeback claims absorption but no lower level "
                           "holds the line dirty",
                           cycle=ev.cycle, level=ev.level, line=ev.line)
        else:
            for lvl in lower:
                if lvl.storage.contains(ev.line):
                    self._fail(
                        "inclusion",
                        f"writeback to DRAM bypassed the copy still "
                        f"resident in {lvl.name} (now clean and stale)",
                        cycle=ev.cycle, level=ev.level, line=ev.line)
        self._record(ev.cycle, "Writeback", ev.level, ev.line,
                     "absorbed" if ev.absorbed else "to-dram")

    def _on_issued(self, ev: PrefetchIssued) -> None:
        self._issued[ev.level] += 1
        self.audited_events += 1
        self._ring_append((ev.cycle, "PrefetchIssued", ev.level, ev.line, ""))

    def _on_dropped(self, ev: PrefetchDropped) -> None:
        self._dropped += 1
        self._drop_reasons[ev.reason] = self._drop_reasons.get(ev.reason, 0) + 1
        self._record(ev.cycle, "PrefetchDropped", ev.level, ev.line,
                     ev.reason)

    # --------------------------------------------------------- checkpoints

    def checkpoint(self, cycle: float) -> None:
        """Per-access audit hook.

        Dirty obligations must already be discharged (their writebacks
        publish synchronously inside the eviction that created them);
        structural and deep laws run on their configured cadences.
        """
        self._last_access_cycle = cycle
        self._accesses += 1
        if self._dirty_obligations:
            line = next(iter(self._dirty_obligations))
            self._fail("dirty-conservation",
                       f"{len(self._dirty_obligations)} dirty victim(s) "
                       "left a cache without being absorbed below or "
                       "written back to DRAM",
                       cycle=cycle, line=line)
        if self._accesses % self._every == 0:
            deep = (self._accesses // self._every) % self._deep_every == 0
            self.audit_now(cycle, deep=deep)

    def finalize(self, cycle: float) -> None:
        """End-of-run audit: every law, plus end-state checks (fill
        queues drained, no unpruneable MSHR entries)."""
        self.audit_now(cycle, deep=True)
        for level in self.hierarchy.levels:
            storage = level.storage
            pending = storage.fills.live_count()
            if pending != 0:
                self._fail("fill-queue",
                           f"{storage.name} still holds {pending} pending "
                           "fills after the end-of-run sync",
                           cycle=cycle, level=level.level)
        if self._dirty_obligations:
            self._fail("dirty-conservation",
                       "dirty victims still undischarged at end of run",
                       cycle=cycle,
                       line=next(iter(self._dirty_obligations)))

    # ----------------------------------------------------- structural laws

    def audit_now(self, cycle: float, *, deep: bool = True) -> None:
        """Run the structural laws immediately (tests call this too)."""
        self.structural_audits += 1
        for level in self.hierarchy.levels:
            self._audit_storage(level, cycle)
        self._audit_stats(cycle)
        self._audit_prefetch_accounting(cycle)
        self._audit_shared_monotonicity(cycle)
        if deep:
            self._audit_census_and_capacity(cycle)
            self._audit_inclusion(cycle)

    def _audit_storage(self, level, cycle: float) -> None:
        storage = level.storage
        mshr = storage._mshr
        # The occupancy bound is strict only where admission is enforced:
        # demands stall the core on L1D MSHR availability and prefetches
        # check their target level.  Lower levels deliberately admit
        # descending demands with the L1 slot held, so their leak law is
        # *pairing* instead (below): an entry that has not completed must
        # have a fill in flight to release it.
        if (level.level is FillLevel.L1D
                and len(mshr) > storage._mshr_capacity):
            self._fail("mshr-occupancy",
                       f"{storage.name} holds {len(mshr)} MSHR entries, "
                       f"capacity {storage._mshr_capacity}",
                       cycle=cycle, level=level.level)
        if mshr:
            in_flight = storage.fills._by_line
            completions = [when for when, _ in mshr.values()]
            for line, (when, _) in mshr.items():
                if not math.isfinite(when):
                    self._fail("mshr-leak",
                               f"{storage.name} MSHR entry can never "
                               f"complete (completion={when})",
                               cycle=cycle, level=level.level, line=line)
                if when > cycle and line not in in_flight:
                    self._fail("mshr-leak",
                               f"{storage.name} MSHR entry has not "
                               f"completed (ready {when}) but no fill is "
                               "in flight to release it",
                               cycle=cycle, level=level.level, line=line)
            if storage._mshr_min > min(completions):
                self._fail("mshr-bound",
                           f"{storage.name} prune lower bound "
                           f"{storage._mshr_min} exceeds the true minimum "
                           f"{min(completions)} — completed entries would "
                           "never be pruned",
                           cycle=cycle, level=level.level)
        fills = storage.fills
        indexed = sum(len(bucket) for bucket in fills._by_line.values())
        live = sum(1 for entry in fills._heap if not entry[2].canceled)
        if indexed != live:
            self._fail("fill-queue",
                       f"{storage.name} fill heap holds {live} live "
                       f"entries but the per-line index holds {indexed}",
                       cycle=cycle, level=level.level)
        heap_ids = {id(entry[2]) for entry in fills._heap
                    if not entry[2].canceled}
        for line, bucket in fills._by_line.items():
            for fill in bucket:
                if fill.line != line:
                    self._fail("fill-queue",
                               f"{storage.name} fill for line "
                               f"{fill.line:#x} indexed under {line:#x}",
                               cycle=cycle, level=level.level, line=line)
                if id(fill) not in heap_ids:
                    self._fail("fill-queue",
                               f"{storage.name} indexed fill for line "
                               f"{line:#x} is missing from the heap",
                               cycle=cycle, level=level.level, line=line)

    def _audit_stats(self, cycle: float) -> None:
        for block in self._blocks.values():
            actual, shadow = block.actual, block.shadow
            for field in _STAT_FIELDS:
                have, want = getattr(actual, field), getattr(shadow, field)
                if have != want:
                    self._fail(
                        "stats-conservation",
                        f"{block.level.name} {field} is {have} but the "
                        f"event stream accounts for {want} — a counter "
                        "was reset, double-counted or missed",
                        cycle=cycle, level=block.level)
            if (actual.demand_hits + actual.demand_misses
                    != actual.demand_accesses):
                self._fail("stats-conservation",
                           f"{block.level.name} hits+misses != accesses",
                           cycle=cycle, level=block.level)

    def _audit_prefetch_accounting(self, cycle: float) -> None:
        accounting = self.hierarchy.prefetch_accounting
        if accounting.dropped_prefetches != sum(
                accounting.drop_reasons.values()):
            self._fail("drop-accounting",
                       "dropped_prefetches disagrees with the sum of "
                       "per-reason drop counters", cycle=cycle)
        if accounting.dropped_prefetches != self._dropped:
            self._fail("drop-accounting",
                       f"accounting reports {accounting.dropped_prefetches} "
                       f"drops, the event stream carried {self._dropped}",
                       cycle=cycle)
        for reason, count in self._drop_reasons.items():
            if accounting.drop_reasons.get(reason, 0) != count:
                self._fail("drop-accounting",
                           f"drop reason {reason!r} diverged from the "
                           "event stream", cycle=cycle)
        for level, count in self._issued.items():
            if accounting.issued_prefetches.get(level, 0) != count:
                self._fail("drop-accounting",
                           f"issued_prefetches[{level.name}] diverged from "
                           "the event stream", cycle=cycle, level=level)

    def _audit_shared_monotonicity(self, cycle: float) -> None:
        hierarchy = self.hierarchy
        shared, mine = hierarchy.llc.stats, hierarchy.llc_stats
        for field in _STAT_FIELDS:
            if getattr(shared, field) < getattr(mine, field):
                self._fail(
                    "shared-monotonicity",
                    f"shared LLC {field} ({getattr(shared, field)}) fell "
                    f"below core {hierarchy.core_id}'s attributed count "
                    f"({getattr(mine, field)}) — a shared counter was "
                    "reset mid-measurement",
                    cycle=cycle, level=FillLevel.LLC)
        totals, port = hierarchy.dram.stats, hierarchy.dram_port.stats
        for field in ("demand_requests", "prefetch_requests",
                      "writeback_requests"):
            if getattr(totals, field) < getattr(port, field):
                self._fail(
                    "shared-monotonicity",
                    f"shared DRAM {field} ({getattr(totals, field)}) fell "
                    f"below core {hierarchy.core_id}'s attributed count "
                    f"({getattr(port, field)}) — a shared counter was "
                    "reset mid-measurement",
                    cycle=cycle)
        if self._exclusive_llc:
            for field in _STAT_FIELDS:
                if getattr(shared, field) != getattr(mine, field):
                    self._fail(
                        "shared-monotonicity",
                        f"single-core LLC {field} mirror diverged from the "
                        "storage block", cycle=cycle, level=FillLevel.LLC)

    def _audit_census_and_capacity(self, cycle: float) -> None:
        for block in self._blocks.values():
            storage = block.storage
            resident_prefetched = 0
            for cache_set in storage._sets:
                if len(cache_set) > storage.ways:
                    self._fail("set-capacity",
                               f"{storage.name} set holds {len(cache_set)} "
                               f"lines, associativity {storage.ways}",
                               cycle=cycle, level=block.level)
                for entry in cache_set.values():
                    if entry.prefetched:
                        resident_prefetched += 1
            if block.check_census and resident_prefetched != block.census:
                self._fail(
                    "prefetch-census",
                    f"{storage.name} holds {resident_prefetched} prefetched "
                    f"bits but fills minus resolutions account for "
                    f"{block.census}",
                    cycle=cycle, level=block.level)

    def _audit_inclusion(self, cycle: float) -> None:
        hierarchy = self.hierarchy
        llc = hierarchy.llc
        for storage, level in ((hierarchy.l1d, FillLevel.L1D),
                               (hierarchy.l2c, FillLevel.L2C)):
            for cache_set in storage._sets:
                for line in cache_set:
                    if (llc.contains(line)
                            or line in llc.fills._by_line
                            or line in llc._mshr):
                        continue
                    self._fail(
                        "inclusion",
                        f"{storage.name} holds line {line:#x} that is "
                        "neither resident in nor in flight to the "
                        "inclusive LLC",
                        cycle=cycle, level=level, line=line)
