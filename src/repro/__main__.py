"""``python -m repro`` — same entry point as the ``pmp-repro`` script."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
