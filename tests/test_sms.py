"""SMS pattern capture framework (Section II-B) and rotation helpers."""

from hypothesis import given, strategies as st

from repro.prefetchers.base import NullSystemView
from repro.prefetchers.sms import (
    CapturedPattern,
    PatternCaptureFramework,
    SetAssociativeTable,
    SMSPrefetcher,
    rotate_left,
    rotate_right,
)

REGION = 0x1000_0000  # 4KB-aligned


def line_addr(region, offset):
    return region + offset * 64


class TestRotation:
    def test_anchor_moves_trigger_to_bit_zero(self):
        bits = (1 << 5) | (1 << 9)
        anchored = rotate_left(bits, 5, 64)
        assert anchored & 1
        assert anchored >> 4 & 1  # offset 9 -> index 4

    def test_wraparound(self):
        bits = 1 << 2
        anchored = rotate_left(bits, 5, 8)
        assert anchored == 1 << 5  # (2 - 5) mod 8

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=63))
    def test_rotate_roundtrip(self, bits, amount):
        assert rotate_right(rotate_left(bits, amount, 64), amount, 64) == bits

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=63))
    def test_rotation_preserves_popcount(self, bits, amount):
        assert rotate_left(bits, amount, 64).bit_count() == bits.bit_count()


class TestSetAssociativeTable:
    def test_insert_and_get(self):
        table = SetAssociativeTable(2, 2)
        table.insert(REGION, "a")
        assert table.get(REGION) == "a"

    def test_lru_eviction(self):
        table = SetAssociativeTable(1, 2)
        table.insert(0 << 12, "a")
        table.insert(1 << 12, "b")
        table.get(0 << 12)  # touch: a becomes MRU
        victim = table.insert(2 << 12, "c")
        assert victim == (1 << 12, "b")

    def test_len_counts_all_sets(self):
        table = SetAssociativeTable(4, 2)
        for i in range(6):
            table.insert(i << 12, i)
        assert len(table) == 6

    def test_rejects_empty_geometry(self):
        import pytest
        with pytest.raises(ValueError):
            SetAssociativeTable(0, 4)


class TestCaptureFlow:
    def test_first_access_is_trigger(self):
        capture = PatternCaptureFramework()
        is_trigger, offset, completed = capture.observe(0x400, line_addr(REGION, 7))
        assert is_trigger and offset == 7 and completed == []

    def test_second_access_promotes_to_accumulation(self):
        capture = PatternCaptureFramework()
        capture.observe(0x400, line_addr(REGION, 7))
        is_trigger, _, _ = capture.observe(0x400, line_addr(REGION, 9))
        assert not is_trigger
        assert REGION in capture.accumulation_table

    def test_same_offset_stays_in_filter(self):
        capture = PatternCaptureFramework()
        capture.observe(0x400, line_addr(REGION, 7))
        capture.observe(0x400, line_addr(REGION, 7))
        assert REGION not in capture.accumulation_table
        assert REGION in capture.filter_table

    def test_accumulation_records_all_offsets(self):
        capture = PatternCaptureFramework()
        for offset in (3, 5, 8, 13):
            capture.observe(0x400, line_addr(REGION, offset))
        pattern = capture.end_region(REGION)
        assert pattern is not None
        assert pattern.offsets() == [3, 5, 8, 13]
        assert pattern.trigger_offset == 3

    def test_end_region_on_filter_only_returns_nothing(self):
        capture = PatternCaptureFramework()
        capture.observe(0x400, line_addr(REGION, 3))
        assert capture.end_region(REGION) is None
        assert REGION not in capture.filter_table

    def test_capacity_eviction_completes_pattern(self):
        capture = PatternCaptureFramework(at_sets=1, at_ways=2)
        for i in range(3):
            region = REGION + i * 4096
            capture.observe(0x400, line_addr(region, 0))
            _, _, completed = capture.observe(0x400, line_addr(region, 1))
            if i < 2:
                assert completed == []
        assert len(completed) == 1
        assert completed[0].region == REGION

    def test_drain_flushes_everything(self):
        capture = PatternCaptureFramework()
        for i in range(4):
            region = REGION + i * 4096
            capture.observe(0x400, line_addr(region, 0))
            capture.observe(0x400, line_addr(region, 2))
        patterns = capture.drain()
        assert len(patterns) == 4
        assert len(capture.accumulation_table) == 0

    def test_anchored_bit_zero_always_set(self):
        capture = PatternCaptureFramework()
        for offset in (11, 13, 60):
            capture.observe(0x400, line_addr(REGION, offset))
        pattern = capture.end_region(REGION)
        assert pattern.anchored() & 1

    def test_region_generation_restarts_after_end(self):
        capture = PatternCaptureFramework()
        capture.observe(0x400, line_addr(REGION, 1))
        capture.observe(0x400, line_addr(REGION, 2))
        capture.end_region(REGION)
        is_trigger, offset, _ = capture.observe(0x400, line_addr(REGION, 5))
        assert is_trigger and offset == 5


class TestSMSPrefetcher:
    def test_learns_and_replays_pattern(self):
        sms = SMSPrefetcher()
        view = NullSystemView()
        pc = 0x400
        # First generation in region A teaches the pattern.
        region_a = REGION
        for offset in (4, 5, 6):
            sms.on_access(pc, line_addr(region_a, offset), 0.0, False, view)
        sms.on_evict(line_addr(region_a, 4))
        # A new region with the same PC and trigger offset replays it.
        region_b = REGION + (64 << 12)
        requests = sms.on_access(pc, line_addr(region_b, 4), 0.0, False, view)
        targets = {r.address for r in requests}
        assert line_addr(region_b, 5) in targets
        assert line_addr(region_b, 6) in targets

    def test_no_prediction_without_history(self):
        sms = SMSPrefetcher()
        requests = sms.on_access(0x999, line_addr(REGION, 0), 0.0, False,
                                 NullSystemView())
        assert requests == []


def test_captured_pattern_offsets_roundtrip():
    pattern = CapturedPattern(region=REGION, pc=0x400, trigger_offset=2,
                              bit_vector=(1 << 2) | (1 << 9), length=64)
    assert pattern.offsets() == [2, 9]
    assert pattern.anchored() == (1 << 0) | (1 << 7)
