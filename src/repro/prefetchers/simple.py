"""Simple classical prefetchers (Related Work, Section VI-A).

Anchors for the examples and tests: Next-Line, a per-PC constant-stride
prefetcher, and Best-Offset (Michaud, HPCA 2016).  None of these appear in
the paper's headline comparison, but the paper discusses them as the
constant-stride family that cannot express the variable-stride patterns
PMP targets — the property the unit tests demonstrate directly.
"""

from __future__ import annotations

from collections import OrderedDict

from ..memtrace.access import PAGE_BYTES, hash_pc
from .base import FillLevel, Prefetcher, PrefetchRequest, SystemView

_LINES_PER_PAGE = PAGE_BYTES // 64


class NextLine(Prefetcher):
    """Always prefetch the next `degree` cachelines."""

    name = "next-line"

    def __init__(self, degree: int = 1,
                 fill_level: FillLevel = FillLevel.L1D) -> None:
        self.degree = degree
        self.fill_level = fill_level

    def on_access(self, pc: int, address: int, cycle: float, hit: bool,
                  view: SystemView) -> list[PrefetchRequest]:
        line = address >> 6
        return [PrefetchRequest(address=(line + i) << 6, level=self.fill_level)
                for i in range(1, self.degree + 1)]


class StridePrefetcher(Prefetcher):
    """Per-PC stride detection with a 2-bit confidence counter."""

    name = "stride"

    def __init__(self, *, table_entries: int = 256, degree: int = 4,
                 fill_level: FillLevel = FillLevel.L1D) -> None:
        self.table_entries = table_entries
        self.degree = degree
        self.fill_level = fill_level
        # pc hash -> [last line, stride, confidence]
        self._table: OrderedDict[int, list[int]] = OrderedDict()

    def on_access(self, pc: int, address: int, cycle: float, hit: bool,
                  view: SystemView) -> list[PrefetchRequest]:
        line = address >> 6
        key = hash_pc(pc, 12)
        entry = self._table.get(key)
        if entry is None:
            if len(self._table) >= self.table_entries:
                self._table.popitem(last=False)
            self._table[key] = [line, 0, 0]
            return []
        self._table.move_to_end(key)
        last_line, stride, confidence = entry
        new_stride = line - last_line
        if new_stride == stride and stride != 0:
            confidence = min(3, confidence + 1)
        else:
            confidence = max(0, confidence - 1)
            stride = new_stride
        entry[0], entry[1], entry[2] = line, stride, confidence
        if confidence < 2 or stride == 0:
            return []
        return [PrefetchRequest(address=(line + stride * i) << 6,
                                level=self.fill_level)
                for i in range(1, self.degree + 1)]


class BestOffset(Prefetcher):
    """Best-Offset prefetching: periodically score a fixed offset list.

    A small recent-requests table remembers lines demanded recently; an
    offset scores a point when `line - offset` is in it (i.e. the offset
    would have been timely).  The best scorer of each learning round
    becomes the active prefetch offset.
    """

    name = "best-offset"

    OFFSETS = (1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 30, 32,
               -1, -2, -3, -4, -8)

    def __init__(self, *, round_length: int = 256, rr_entries: int = 64,
                 score_threshold: int = 20,
                 fill_level: FillLevel = FillLevel.L1D) -> None:
        self.round_length = round_length
        self.rr_entries = rr_entries
        self.score_threshold = score_threshold
        self.fill_level = fill_level
        self._recent: OrderedDict[int, None] = OrderedDict()
        self._scores = [0] * len(self.OFFSETS)
        self._tested = 0
        self.active_offset: int | None = 1

    def _remember(self, line: int) -> None:
        if line in self._recent:
            self._recent.move_to_end(line)
        elif len(self._recent) >= self.rr_entries:
            self._recent.popitem(last=False)
        self._recent[line] = None

    def on_access(self, pc: int, address: int, cycle: float, hit: bool,
                  view: SystemView) -> list[PrefetchRequest]:
        line = address >> 6
        for i, offset in enumerate(self.OFFSETS):
            if line - offset in self._recent:
                self._scores[i] += 1
        self._remember(line)
        self._tested += 1
        if self._tested >= self.round_length:
            best = max(range(len(self.OFFSETS)), key=self._scores.__getitem__)
            if self._scores[best] >= self.score_threshold:
                self.active_offset = self.OFFSETS[best]
            else:
                self.active_offset = None  # prefetching off this round
            self._scores = [0] * len(self.OFFSETS)
            self._tested = 0
        if self.active_offset is None:
            return []
        target_line = line + self.active_offset
        if target_line < 0:
            return []
        # Stay within the page, as hardware prefetchers must.
        if (target_line >> 6) != (line >> 6):
            return []
        return [PrefetchRequest(address=target_line << 6, level=self.fill_level)]
