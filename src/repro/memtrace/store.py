"""On-disk trace store: build the suite once, reuse across experiment runs.

Full-suite experiments (125 traces) spend most of their time regenerating
identical traces.  :class:`TraceStore` caches built traces under a
directory keyed by (name, seed, length), in the compact binary format, so
a second `pmp-repro --full-suite` run skips generation entirely.

>>> store = TraceStore("/tmp/pmp-traces")
>>> trace = store.get(quick_suite()[0], accesses=30_000)   # builds + saves
>>> trace = store.get(quick_suite()[0], accesses=30_000)   # loads from disk
"""

from __future__ import annotations

from pathlib import Path

from .trace import Trace
from .workloads import WorkloadSpec


class TraceStore:
    """Directory-backed cache of built workload traces."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path_for(self, spec: WorkloadSpec, accesses: int) -> Path:
        return self.directory / f"{spec.name}-s{spec.seed}-n{accesses}.pmptrc"

    def get(self, spec: WorkloadSpec, accesses: int) -> Trace:
        """Load the trace from disk, building and saving it on first use."""
        path = self._path_for(spec, accesses)
        if path.exists():
            try:
                trace = Trace.load_binary(path)
            except (ValueError, OSError):
                path.unlink(missing_ok=True)  # corrupt cache entry: rebuild
            else:
                self.hits += 1
                return trace
        self.misses += 1
        trace = spec.build(accesses)
        trace.save_binary(path)
        return trace

    def build_all(self, specs: list[WorkloadSpec], accesses: int) -> list[Trace]:
        """Fetch (or build) every spec at the given length."""
        return [self.get(spec, accesses) for spec in specs]

    def clear(self) -> int:
        """Delete all cached traces; returns how many files were removed."""
        removed = 0
        for path in self.directory.glob("*.pmptrc"):
            path.unlink()
            removed += 1
        return removed
