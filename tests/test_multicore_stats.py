"""Multicore stats attribution: per-core deltas vs shared hardware totals.

The old multicore driver reset the shared LLC/DRAM counters at every
lane's warmup boundary and then reported the shared totals as each
core's own traffic — per-core numbers neither summed to the hardware
totals nor meant anything individually.  These tests pin the fixed
two-level boundary: every shared-resource increment lands in exactly one
lane's attribution view (LLC mirror, DRAM port), so the per-core results
sum to the shared totals over the common measurement window.
"""

import heapq

import numpy as np
import pytest

from repro.memtrace.access import MemoryAccess
from repro.memtrace.trace import Trace
from repro.prefetchers.base import NoPrefetcher
from repro.sim.cache import Cache
from repro.sim.dram import Dram
from repro.sim.hierarchy import SharedLLC
from repro.sim.invariants import InvariantAuditor
from repro.sim.multicore import (
    _CoreLane,
    _open_measurement,
    _warmup_ends,
    simulate_multicore,
)

from tests.test_invariants import small_config


def make_traces(count, length=700, lines=4096, write_fraction=0.3, seed=17):
    rng = np.random.default_rng(seed)
    traces = []
    for core in range(count):
        trace = Trace(f"mc-{core}")
        for _ in range(length):
            trace.append(MemoryAccess(
                pc=0x400 + core, address=int(rng.integers(0, lines)) * 64,
                is_write=bool(rng.random() < write_fraction),
                gap=int(rng.integers(0, 20))))
        traces.append(trace)
    return traces


def run_keeping_shared(traces, warmup_fraction=0.2, audit=True):
    """``simulate_multicore``'s loop, keeping the shared LLC/DRAM handles
    so tests can compare attributed views against the hardware totals."""
    config = small_config().for_multicore(len(traces))
    shared = SharedLLC(Cache(config.llc, name="LLC"))
    dram = Dram(config.dram)
    ends = _warmup_ends(traces, warmup_fraction)
    lanes = [_CoreLane(i, trace, NoPrefetcher(), config, shared, dram,
                       warmup_end=ends[i])
             for i, trace in enumerate(traces)]
    if audit:
        for lane in lanes:
            lane.auditor = InvariantAuditor(lane.hierarchy)
        for lane in lanes:
            for other in lanes:
                if other is not lane:
                    lane.auditor.watch_remote_bus(other.hierarchy.bus)

    pending_warmup = {lane.core_id for lane in lanes if not lane.done}
    if not pending_warmup:
        _open_measurement(lanes, shared, dram)
    heap = [(lane.core.cycle, lane.core_id) for lane in lanes]
    heapq.heapify(heap)
    while heap:
        _, core_id = heapq.heappop(heap)
        lane = lanes[core_id]
        if lane.done:
            continue
        crossed = lane.step()
        if core_id in pending_warmup and (crossed or lane.done):
            pending_warmup.discard(core_id)
            if not pending_warmup:
                _open_measurement(lanes, shared, dram)
        if not lane.done:
            heapq.heappush(heap, (lane.core.cycle, core_id))
    return [lane.result() for lane in lanes], shared, dram


class TestAttributionSumsToSharedTotals:
    def _check_sums(self, results, shared, dram):
        assert sum(r.dram_demand_requests for r in results) == \
            dram.stats.demand_requests
        assert sum(r.dram_writeback_requests for r in results) == \
            dram.stats.writeback_requests
        llc = shared.cache.stats
        for field in ("demand_accesses", "demand_hits", "demand_misses",
                      "prefetch_fills", "useful_prefetches"):
            assert sum(getattr(r.levels["llc"], field) for r in results) == \
                getattr(llc, field), field

    def test_homogeneous_warmup(self):
        results, shared, dram = run_keeping_shared(make_traces(4))
        assert dram.stats.demand_requests > 0
        assert dram.stats.writeback_requests > 0
        self._check_sums(results, shared, dram)

    def test_heterogeneous_warmup(self):
        # Lanes cross their warmup boundaries at very different points;
        # the shared counters still reset exactly once (when the slowest
        # lane crosses), so the sum property must survive.
        results, shared, dram = run_keeping_shared(
            make_traces(4), warmup_fraction=[0.0, 0.2, 0.5, 0.8])
        self._check_sums(results, shared, dram)

    def test_every_core_reports_its_own_traffic(self):
        # Before the fix each lane reported the *shared* totals: all
        # cores showed identical (and 4x inflated) DRAM traffic.
        results, shared, dram = run_keeping_shared(make_traces(4))
        demands = [r.dram_demand_requests for r in results]
        assert all(0 < d < dram.stats.demand_requests for d in demands)


class TestWarmupFractions:
    def test_mismatched_fraction_list_raises(self):
        with pytest.raises(ValueError):
            simulate_multicore(make_traces(3), warmup_fraction=[0.2, 0.5])

    def test_zero_warmup_measures_whole_trace(self):
        traces = make_traces(2, length=300)
        results = simulate_multicore(traces, warmup_fraction=0.0,
                                     check_invariants=True)
        for trace, result in zip(traces, results):
            assert result.levels["l1d"].demand_accesses == len(trace)

    def test_heterogeneous_fractions_scale_measured_windows(self):
        traces = make_traces(2, length=400)
        results = simulate_multicore(traces, warmup_fraction=[0.0, 0.5],
                                     check_invariants=True)
        assert results[0].levels["l1d"].demand_accesses == 400
        assert results[1].levels["l1d"].demand_accesses == 200


def test_audited_multicore_matches_unaudited():
    """The cross-wired per-lane auditors are pure observation."""
    traces = make_traces(3, length=400)
    plain = simulate_multicore(traces, check_invariants=False)
    audited = simulate_multicore(traces, check_invariants=True)
    assert plain == audited
