"""``expected:`` blocks — post-run assertions over simulation results.

A scenario may declare what a correct run must look like: minimum
normalized IPC per prefetcher, coverage/accuracy floors, memory-traffic
ceilings, a NIPC ordering between prefetchers, and MPKI bounds on the
trace itself.  :func:`evaluate_expected` checks every assertion and
returns all passes and failures; ``pmp-repro scenarios run`` exits
non-zero when any assertion fails.

Bound assertions (``min_nipc``, ``max_nipc``, ``max_nmt``,
``min_coverage``, ``min_accuracy``) take either a bare number — applied
to every prefetcher the run simulated — or a ``{prefetcher = bound}``
table.  Coverage is measured at ``coverage_level`` (default ``l1d``).

``tolerance`` (a relative fraction, e.g. ``0.05``) slackens every
simulation-derived bound assertion and the ``nipc_order`` comparison:
``min_*`` bounds shrink to ``bound * (1 - tolerance)``, ``max_*`` bounds
grow to ``bound * (1 + tolerance)``.  Scenarios meant to gate *sampled*
runs (``--sample``, or a ``sim.sampling`` block) declare their sampling
error budget this way instead of hand-loosening each bound.  MPKI
assertions are exact — they measure the trace, not the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..memtrace.trace import Trace
from ..sim.stats import SimResult


@dataclass
class ExpectationReport:
    """Outcome of evaluating one scenario's ``expected:`` block."""

    passed: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failed

    def merge(self, other: "ExpectationReport") -> None:
        self.passed.extend(other.passed)
        self.failed.extend(other.failed)

    def lines(self) -> list[str]:
        return ([f"  PASS {line}" for line in self.passed] +
                [f"  FAIL {line}" for line in self.failed])


def _bounds(value, results: Mapping[str, SimResult]) -> dict[str, float]:
    """Normalise a bound spec to {prefetcher: bound}."""
    if isinstance(value, Mapping):
        return {name: float(bound) for name, bound in value.items()}
    return {name: float(value) for name in results}


def _check_bound(report: ExpectationReport, label: str, prefetcher: str,
                 actual: float | None, bound: float, *,
                 at_least: bool, tolerance: float = 0.0) -> None:
    if actual is None:
        report.failed.append(
            f"{label}[{prefetcher}]: prefetcher was not simulated "
            "(add it to sim.prefetchers or --prefetcher)")
        return
    effective = bound * (1.0 - tolerance) if at_least \
        else bound * (1.0 + tolerance)
    op = ">=" if at_least else "<="
    ok = actual >= effective if at_least else actual <= effective
    note = f" [tolerance {tolerance:g} on {bound:.4f}]" if tolerance else ""
    line = f"{label}[{prefetcher}]: {actual:.4f} {op} {effective:.4f}{note}"
    (report.passed if ok else report.failed).append(line)


def evaluate_expected(expected: Mapping, *, trace: Trace,
                      results: Mapping[str, SimResult],
                      baseline: SimResult | None = None,
                      ) -> ExpectationReport:
    """Evaluate one scenario's assertions against one trace's runs.

    ``results`` maps prefetcher name to its run on this trace;
    ``baseline`` is the no-prefetcher run (needed for NIPC/NMT/coverage
    assertions — their absence when required is itself a failure, not a
    crash).
    """
    report = ExpectationReport()
    if not expected:
        return report

    level = expected.get("coverage_level", "l1d")
    tolerance = float(expected.get("tolerance", 0.0))
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(
            f"expected.tolerance must be in [0, 1), got {tolerance}")

    if "min_mpki" in expected or "max_mpki" in expected:
        mpki = trace.estimated_mpki()
        if "min_mpki" in expected:
            bound = float(expected["min_mpki"])
            line = f"min_mpki: {mpki:.2f} >= {bound:.2f}"
            (report.passed if mpki >= bound else report.failed).append(line)
        if "max_mpki" in expected:
            bound = float(expected["max_mpki"])
            line = f"max_mpki: {mpki:.2f} <= {bound:.2f}"
            (report.passed if mpki <= bound else report.failed).append(line)

    if "min_ipc" in expected:
        bound = float(expected["min_ipc"])
        for name, result in results.items():
            _check_bound(report, "min_ipc", name, result.ipc, bound,
                         at_least=True, tolerance=tolerance)

    # Baseline-relative assertions fail (not crash) without a baseline
    # run — but only *those*: min_accuracy and the checks above need no
    # baseline and must still be evaluated, so no early return here.
    needs_baseline = [key for key in ("min_nipc", "max_nipc", "max_nmt",
                                      "min_coverage", "nipc_order")
                      if key in expected]
    if needs_baseline and baseline is None:
        report.failed.append(
            f"{'/'.join(needs_baseline)}: need a no-prefetcher baseline "
            "run to evaluate")

    if baseline is not None:
        for key, at_least in (("min_nipc", True), ("max_nipc", False)):
            if key in expected:
                for name, bound in _bounds(expected[key], results).items():
                    result = results.get(name)
                    actual = result.nipc(baseline) if result else None
                    _check_bound(report, key, name, actual, bound,
                                 at_least=at_least, tolerance=tolerance)

        if "max_nmt" in expected:
            for name, bound in _bounds(expected["max_nmt"],
                                       results).items():
                result = results.get(name)
                actual = result.nmt(baseline) if result else None
                _check_bound(report, "max_nmt", name, actual, bound,
                             at_least=False, tolerance=tolerance)

        if "min_coverage" in expected:
            for name, bound in _bounds(expected["min_coverage"],
                                       results).items():
                result = results.get(name)
                actual = result.coverage(baseline, level) if result else None
                _check_bound(report, f"min_coverage@{level}", name, actual,
                             bound, at_least=True, tolerance=tolerance)

    if "min_accuracy" in expected:
        for name, bound in _bounds(expected["min_accuracy"],
                                   results).items():
            result = results.get(name)
            actual = result.accuracy(level) if result else None
            _check_bound(report, f"min_accuracy@{level}", name, actual,
                         bound, at_least=True, tolerance=tolerance)

    if "nipc_order" in expected and baseline is not None:
        order = list(expected["nipc_order"])
        missing = [name for name in order if name not in results]
        if missing:
            report.failed.append(
                f"nipc_order: prefetcher(s) {missing} were not simulated")
        else:
            nipcs = [(name, results[name].nipc(baseline)) for name in order]
            # Tolerance lets a sampled run pass when adjacent entries are
            # within the declared error budget of each other.
            ok = all(a[1] >= b[1] * (1.0 - tolerance)
                     for a, b in zip(nipcs, nipcs[1:]))
            rendered = " >= ".join(f"{name}({value:.4f})"
                                   for name, value in nipcs)
            suffix = f" [tolerance {tolerance:g}]" if tolerance else ""
            (report.passed if ok else report.failed).append(
                f"nipc_order: {rendered}{suffix}")
    return report


def prefetchers_under_test(expected: Mapping) -> set[str]:
    """Prefetcher names an ``expected:`` block references (to auto-run)."""
    names: set[str] = set()
    for key in ("min_nipc", "max_nipc", "max_nmt", "min_coverage",
                "min_accuracy"):
        value = expected.get(key)
        if isinstance(value, Mapping):
            names.update(value)
    names.update(expected.get("nipc_order", ()))
    return names
