"""Cache hierarchy: demand path, deferred fills, inclusion, prefetch path."""

from repro.prefetchers.base import (
    FillLevel,
    NoPrefetcher,
    Prefetcher,
    PrefetchRequest,
)
from repro.sim.hierarchy import Hierarchy
from repro.sim.params import SystemConfig


def build(prefetcher=None, config=None):
    return Hierarchy.build(config or SystemConfig.default(),
                           prefetcher or NoPrefetcher())


ADDR = 0x4000_0000


class TestDemandPath:
    def test_cold_miss_costs_full_path(self):
        h = build()
        config = h.config
        latency, hit = h.demand_access(ADDR, 0.0)
        floor = (config.l1d.hit_latency + config.l2c.hit_latency +
                 config.llc.hit_latency + h.dram.latency)
        assert not hit
        assert latency >= floor

    def test_line_not_resident_until_fill_completes(self):
        h = build()
        latency, _ = h.demand_access(ADDR, 0.0)
        assert not h.l1d.contains(ADDR >> 6)
        h._sync(latency + 1)
        assert h.l1d.contains(ADDR >> 6)

    def test_hit_after_fill(self):
        h = build()
        latency, _ = h.demand_access(ADDR, 0.0)
        second, hit = h.demand_access(ADDR, latency + 10)
        assert hit
        assert second == h.config.l1d.hit_latency

    def test_early_reaccess_merges_with_inflight_miss(self):
        h = build()
        latency, _ = h.demand_access(ADDR, 0.0)
        dram_before = h.dram.stats.demand_requests
        merged, hit = h.demand_access(ADDR, 10.0)
        assert not hit
        assert h.dram.stats.demand_requests == dram_before  # no re-request
        assert merged <= latency  # waits out the remainder only

    def test_l2_hit_path(self):
        h = build()
        latency, _ = h.demand_access(ADDR, 0.0)
        h._sync(latency + 1)
        # Evict from L1 only (fill conflicting lines mapping to same L1 set).
        line = ADDR >> 6
        for i in range(1, h.l1d.ways + 1):
            h.l1d.fill_now(line + i * h.l1d.num_sets, latency + 1)
        assert not h.l1d.contains(line)
        l2_latency, hit = h.demand_access(ADDR, latency + 10)
        assert not hit
        assert l2_latency <= (h.config.l1d.hit_latency +
                              h.config.l2c.hit_latency)


class TestInclusion:
    def test_llc_eviction_back_invalidates(self):
        h = build()
        latency, _ = h.demand_access(ADDR, 0.0)
        h._sync(latency + 1)
        line = ADDR >> 6
        assert h.l1d.contains(line)
        # Stream enough conflicting lines through the LLC set to evict it.
        cycle = latency + 10
        for i in range(1, h.llc.ways + 2):
            victim_addr = ADDR + i * h.llc.num_sets * 64
            lat, _ = h.demand_access(victim_addr, cycle)
            cycle += lat + 1
            h._sync(cycle)
        assert not h.llc.contains(line)
        assert not h.l1d.contains(line)  # inclusion enforced


class TestPrefetchPath:
    def test_prefetch_fills_requested_level(self):
        h = build()
        ok = h.issue_prefetch(PrefetchRequest(ADDR, FillLevel.L2C), 0.0)
        assert ok
        h._sync(1e9)
        assert h.l2c.contains(ADDR >> 6)
        assert h.llc.contains(ADDR >> 6)  # inclusive
        assert not h.l1d.contains(ADDR >> 6)

    def test_l1_prefetch_fills_all_levels(self):
        h = build()
        h.issue_prefetch(PrefetchRequest(ADDR, FillLevel.L1D), 0.0)
        h._sync(1e9)
        assert h.l1d.contains(ADDR >> 6)
        assert h.l2c.contains(ADDR >> 6)
        assert h.llc.contains(ADDR >> 6)

    def test_duplicate_prefetch_rejected(self):
        h = build()
        assert h.issue_prefetch(PrefetchRequest(ADDR, FillLevel.L1D), 0.0)
        assert not h.issue_prefetch(PrefetchRequest(ADDR, FillLevel.L1D), 1.0)
        assert h.drop_reasons["resident"] == 1

    def test_prefetch_of_resident_line_rejected(self):
        h = build()
        latency, _ = h.demand_access(ADDR, 0.0)
        h._sync(latency + 1)
        assert not h.issue_prefetch(PrefetchRequest(ADDR, FillLevel.L1D),
                                    latency + 2)

    def test_pq_full_rejects(self):
        h = build()
        accepted = 0
        for i in range(h.config.l1d.pq_entries + 4):
            if h.issue_prefetch(PrefetchRequest(ADDR + i * 64, FillLevel.L1D), 0.0):
                accepted += 1
        assert accepted == h.config.l1d.pq_entries
        assert h.drop_reasons["pq_full"] > 0

    def test_llc_resident_promotion_costs_no_dram(self):
        h = build()
        latency, _ = h.demand_access(ADDR, 0.0)
        h._sync(latency + 1)
        # Push the line out of L1 and L2 but keep it in the LLC.
        h.l1d.invalidate(ADDR >> 6)
        h.l2c.invalidate(ADDR >> 6)
        dram_before = h.dram.stats.total_requests
        assert h.issue_prefetch(PrefetchRequest(ADDR, FillLevel.L1D),
                                latency + 10)
        assert h.dram.stats.total_requests == dram_before

    def test_late_prefetch_merge_counts_useful(self):
        h = build()
        h.issue_prefetch(PrefetchRequest(ADDR, FillLevel.L1D), 0.0)
        latency, hit = h.demand_access(ADDR, 5.0)  # before the fill lands
        assert not hit
        assert h.l1d.stats.useful_prefetches == 1
        assert h.l1d.stats.late_prefetch_hits == 1
        # The landed fill must not be double counted at flush.
        h.flush_accounting()
        assert h.l1d.stats.useful_prefetches == 1


class TestFeedback:
    def test_prefetcher_hears_useful_and_useless(self):
        events = []

        class Spy(Prefetcher):
            def on_prefetch_useful(self, address, level):
                events.append(("useful", level))

            def on_prefetch_useless(self, address, level):
                events.append(("useless", level))

        h = build(Spy())
        h.issue_prefetch(PrefetchRequest(ADDR, FillLevel.L1D), 0.0)
        h._sync(1e6)
        h.demand_access(ADDR, 1e6 + 1)
        assert ("useful", FillLevel.L1D) in events

    def test_l1_eviction_notifies_prefetcher(self):
        evicted = []

        class Spy(Prefetcher):
            def on_evict(self, line_address):
                evicted.append(line_address)

        h = build(Spy())
        cycle = 0.0
        for i in range(h.l1d.ways + 2):
            addr = ADDR + i * h.l1d.num_sets * 64
            latency, _ = h.demand_access(addr, cycle)
            cycle += latency + 1
            h._sync(cycle)
        assert evicted


class TestViewAndLifecycle:
    def test_prefetch_headroom_respects_both_limits(self):
        h = build()
        h.set_view_cycle(0.0)
        assert h.prefetch_headroom(FillLevel.L1D) == min(
            h.config.l1d.pq_entries, h.config.l1d.mshr_entries - 1)

    def test_reset_stats_clears_counters(self):
        h = build()
        h.demand_access(ADDR, 0.0)
        h.reset_stats()
        assert h.l1d.stats.demand_accesses == 0
        assert h.dram.stats.total_requests == 0
        assert sum(h.issued_prefetches.values()) == 0
