"""Extension ablation (beyond the paper): bandwidth-adaptive PMP.

The paper's Fig 12a weakness — PMP's ~2x traffic erodes its lead at 800
MT/s — motivates the DESIGN.md extension: throttle the speculative
low-level prefetch tail by the DRAM busy signal.  This bench measures
plain PMP vs the adaptive variant at 800 and 3200 MT/s and checks the
extension trades nothing at full bandwidth while cutting traffic when the
channel is tight.
"""

from repro.experiments.report import format_table
from repro.prefetchers import PMP, BandwidthAdaptivePMP
from repro.sim.params import SystemConfig
from repro.sim.stats import geomean


def test_bandwidth_adaptive_extension(benchmark, sweep_runner):
    def run():
        out = {}
        for mt in (800, 3200):
            config = SystemConfig.default().with_dram_rate(mt)
            baselines = sweep_runner.baselines(config)
            for name, factory in (("pmp", PMP), ("pmp-bw", BandwidthAdaptivePMP)):
                results = sweep_runner.run(factory, config)
                out[(name, mt)] = {
                    "nipc": geomean([r.nipc(b)
                                     for r, b in zip(results, baselines)]),
                    "traffic": sum(r.dram_prefetch_requests for r in results),
                }
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    rows = [(name, mt, vals["nipc"], vals["traffic"])
            for (name, mt), vals in sorted(out.items())]
    print(format_table(["prefetcher", "MT/s", "NIPC", "prefetch traffic"],
                       rows, title="Extension — bandwidth-adaptive PMP"))

    assert out[("pmp-bw", 800)]["traffic"] < out[("pmp", 800)]["traffic"], \
        "the adaptive variant sheds traffic on a tight channel"
    assert out[("pmp-bw", 800)]["nipc"] >= out[("pmp", 800)]["nipc"] - 0.02, \
        "shedding speculation does not hurt at 800 MT/s"
    # The throttle occasionally triggers under bursty traffic even at
    # 3200 MT/s; a few points of peak NIPC is the price of the 800 MT/s win.
    assert out[("pmp-bw", 3200)]["nipc"] >= out[("pmp", 3200)]["nipc"] - 0.05, \
        "and costs only a few points at full bandwidth"
    assert out[("pmp-bw", 800)]["nipc"] > out[("pmp", 800)]["nipc"], \
        "the extension wins where it is aimed: tight channels"
