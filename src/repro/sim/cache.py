"""Set-associative cache with LRU, prefetch bits, MSHRs, prefetch queues
and *deferred fills*.

A miss (demand or prefetch) does not insert its line immediately: the fill
is scheduled on a pending heap and applied — evicting its victim — only
when the data actually arrives (``ready_cycle``).  Demands that touch the
line while the fill is in flight merge with it through the MSHR rather
than re-requesting memory.  Applying fills lazily keeps eviction timing
honest: a prefetch issued 200 cycles early must not shrink the cache for
those 200 cycles.

Useful/useless accounting (Fig 9/10): a demand hit on a line whose
``prefetched`` bit is set makes the prefetch *useful* (bit cleared);
evicting a line with the bit still set makes it *useless*.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections import OrderedDict

from .params import CacheParams


@dataclass(slots=True)
class CacheLine:
    """State of one resident cacheline."""

    ready_cycle: float = 0.0
    prefetched: bool = False
    dirty: bool = False


@dataclass(slots=True)
class PendingFill:
    """A fill scheduled for the future (data still in flight)."""

    ready: float
    line: int
    prefetched: bool
    is_write: bool

    def __lt__(self, other: "PendingFill") -> bool:
        return self.ready < other.ready


@dataclass
class CacheStats:
    """Per-level counters for the Fig 9 / Fig 10 metrics."""

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_fills: int = 0
    useful_prefetches: int = 0
    useless_prefetches: int = 0
    late_prefetch_hits: int = 0
    evictions: int = 0

    def accuracy(self) -> float:
        """Useful / (useful + useless); 0 when no prefetches resolved."""
        total = self.useful_prefetches + self.useless_prefetches
        return self.useful_prefetches / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


class Cache:
    """One set-associative level. Addresses are cacheline-granular ints."""

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.params = params
        self.name = name
        self.num_sets = params.num_sets
        self.ways = params.ways
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()
        # Outstanding misses: line -> (completion cycle, is_prefetch).
        self._mshr: dict[int, tuple[float, bool]] = {}
        # Fills whose data has not arrived yet, ordered by readiness.
        self.pending: list[PendingFill] = []
        # In-flight prefetch-queue occupancy (entries free at issue time).
        self._pq: list[float] = []

    # ------------------------------------------------------------- residency

    def _set_for(self, line: int) -> OrderedDict[int, CacheLine]:
        return self._sets[line % self.num_sets]

    def contains(self, line: int) -> bool:
        """Presence check with no LRU or stats side effects."""
        return line in self._set_for(line)

    def probe(self, line: int) -> CacheLine | None:
        """Peek at a resident line without touching LRU or stats."""
        return self._set_for(line).get(line)

    def lookup(self, line: int, cycle: float, is_write: bool = False) -> bool:
        """Demand lookup (resident lines only — callers sync pending fills
        first and handle in-flight merges through the MSHR).  Returns hit.
        """
        cache_set = self._set_for(line)
        self.stats.demand_accesses += 1
        entry = cache_set.get(line)
        if entry is None:
            self.stats.demand_misses += 1
            return False
        self.stats.demand_hits += 1
        cache_set.move_to_end(line)
        if is_write:
            entry.dirty = True
        if entry.prefetched:
            entry.prefetched = False
            self.stats.useful_prefetches += 1
        return True

    def fill_now(self, line: int, cycle: float, *, prefetched: bool = False,
                 is_write: bool = False) -> tuple[int | None, CacheLine | None]:
        """Apply a fill immediately (data is here).

        Returns ``(victim_line, victim_state)`` — both ``None`` when no
        eviction happened.
        """
        cache_set = self._set_for(line)
        existing = cache_set.get(line)
        if existing is not None:
            # Refill of a resident line: refresh recency, never re-mark a
            # demand-fetched line as a prefetch.
            cache_set.move_to_end(line)
            return None, None
        victim = None
        victim_entry = None
        if len(cache_set) >= self.ways:
            victim, victim_entry = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_entry.prefetched:
                self.stats.useless_prefetches += 1
        cache_set[line] = CacheLine(ready_cycle=cycle,
                                    prefetched=prefetched, dirty=is_write)
        if prefetched:
            self.stats.prefetch_fills += 1
        return victim, victim_entry

    def schedule_fill(self, line: int, ready: float, *, prefetched: bool = False,
                      is_write: bool = False) -> None:
        """Queue a fill to be applied when its data arrives."""
        heapq.heappush(self.pending, PendingFill(
            ready=ready, line=line, prefetched=prefetched, is_write=is_write))

    def pop_ready_fills(self, cycle: float) -> list[PendingFill]:
        """Remove and return every pending fill whose data has arrived."""
        out: list[PendingFill] = []
        pending = self.pending
        while pending and pending[0].ready <= cycle:
            out.append(heapq.heappop(pending))
        return out

    def invalidate(self, line: int) -> bool:
        """Back-invalidation (inclusive LLC eviction). Returns True if present."""
        cache_set = self._set_for(line)
        entry = cache_set.pop(line, None)
        if entry is None:
            return False
        if entry.prefetched:
            self.stats.useless_prefetches += 1
        return True

    def flush_prefetch_accounting(self) -> None:
        """End-of-run: resident never-used prefetched lines count as useless."""
        for cache_set in self._sets:
            for entry in cache_set.values():
                if entry.prefetched:
                    entry.prefetched = False
                    self.stats.useless_prefetches += 1

    def resident_lines(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)

    # ----------------------------------------------------------------- MSHRs

    def mshr_pending(self, line: int) -> float | None:
        """Completion cycle of an outstanding miss on this line, if any."""
        entry = self._mshr.get(line)
        return entry[0] if entry is not None else None

    def mshr_is_prefetch(self, line: int) -> bool:
        """True if the outstanding miss on `line` is a prefetch."""
        entry = self._mshr.get(line)
        return entry is not None and entry[1]

    def mshr_allocate(self, line: int, completion: float,
                      now: float | None = None, *,
                      is_prefetch: bool = False) -> None:
        """Track an outstanding miss; prunes completed entries when `now`
        is given so occupancy never grows stale."""
        if now is not None:
            self.mshr_prune(now)
        self._mshr[line] = (completion, is_prefetch)

    def mshr_release(self, line: int) -> None:
        """Drop the MSHR entry for `line`, if any."""
        self._mshr.pop(line, None)

    def mshr_prune(self, cycle: float) -> None:
        """Drop MSHR entries whose fills have completed."""
        done = [line for line, (when, _) in self._mshr.items() if when <= cycle]
        for line in done:
            del self._mshr[line]

    def mshr_release_completed(self, up_to: float) -> None:
        """Drop every entry completed at or before `up_to`."""
        self.mshr_prune(up_to)

    def mshr_earliest(self) -> float:
        """Completion cycle of the oldest outstanding miss."""
        return min(when for when, _ in self._mshr.values())

    def mshr_free(self, cycle: float) -> int:
        """Free MSHR slots at `cycle` (prunes completed entries)."""
        self.mshr_prune(cycle)
        return self.params.mshr_entries - len(self._mshr)

    def mshr_has_room_for_prefetch(self, cycle: float) -> bool:
        """Prefetches may not take the last MSHR (paper Section IV-B)."""
        return self.mshr_free(cycle) > 1

    # ------------------------------------------------------------------- PQs

    def pq_prune(self, cycle: float) -> None:
        """Drop PQ entries whose issue window has passed."""
        if self._pq:
            self._pq = [when for when in self._pq if when > cycle]

    def pq_free(self, cycle: float) -> int:
        """Free prefetch-queue slots at `cycle`."""
        self.pq_prune(cycle)
        return max(0, self.params.pq_entries - len(self._pq))

    def pq_push(self, completion: float) -> None:
        """Occupy one PQ slot until `completion`."""
        self._pq.append(completion)
