"""On-disk protocol shared by the fabric broker and its workers.

Everything the fabric does is a file under one run directory (the same
``<cache-dir>/runs/<run-id>/`` the :class:`~repro.experiments.journal.
RunJournal` owns), so the only coordination primitive required of the
filesystem is POSIX atomic rename — which both local filesystems and
NFS provide::

    runs/<run-id>/
      journal.jsonl  meta.json          # the PR-4 ledger (broker-owned)
      fabric/
        batch.json                      # {"status": open|paused|complete, ...}
        jobs/<key>.job                  # pickled simulate() payload per job
        leases/
          open/<key>.e<epoch>.json      # published, claimable
          claimed/<key>.e<epoch>.json   # held by a worker (mtime = heartbeat)
          done/<key>.e<epoch>.json      # result payload + checksum
          failed/<key>.e<epoch>.json    # deterministic worker failure
        workers/<worker-id>.json        # census entry (mtime = heartbeat)

A lease's filename carries its **key** (the SimJob content hash — the
same key the cache and journal use) and its **epoch**, a monotonic
fencing token: every broker reassignment bumps the epoch, so a stale
worker's files are recognisable by their lower epoch and can never
clobber the current claim.

Writes are atomic (temp file in the same directory, fsync, rename) and
reads are torn-tolerant: :func:`read_json` returns ``None`` for a
missing or unparseable file and callers retry on the next poll.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path

#: batch.json status values.
BATCH_OPEN = "open"          # workers may claim leases
BATCH_PAUSED = "paused"      # broker interrupted; resume will republish
BATCH_COMPLETE = "complete"  # workers should exit

#: Lease state directory names, in lifecycle order.
LEASE_STATES = ("open", "claimed", "done", "failed")


# ------------------------------------------------------------------ layout

def fabric_dir(run_dir: str | Path) -> Path:
    return Path(run_dir) / "fabric"


def batch_path(run_dir: str | Path) -> Path:
    return fabric_dir(run_dir) / "batch.json"


def jobs_dir(run_dir: str | Path) -> Path:
    return fabric_dir(run_dir) / "jobs"


def workers_dir(run_dir: str | Path) -> Path:
    return fabric_dir(run_dir) / "workers"


def leases_dir(run_dir: str | Path) -> Path:
    return fabric_dir(run_dir) / "leases"


def state_dir(run_dir: str | Path, state: str) -> Path:
    assert state in LEASE_STATES, state
    return leases_dir(run_dir) / state


def ensure_layout(run_dir: str | Path) -> None:
    """Create the whole fabric directory tree (idempotent)."""
    jobs_dir(run_dir).mkdir(parents=True, exist_ok=True)
    workers_dir(run_dir).mkdir(parents=True, exist_ok=True)
    for state in LEASE_STATES:
        state_dir(run_dir, state).mkdir(parents=True, exist_ok=True)


# ------------------------------------------------------------- atomic file IO

def write_json_atomic(path: str | Path, record: dict,
                      fsync: bool = True) -> None:
    """Publish a record atomically: temp file, optional fsync, rename."""
    path = Path(path)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    with tmp.open("w") as fh:
        json.dump(record, fh, sort_keys=True)
        if fsync:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_json(path: str | Path) -> dict | None:
    """One record, or ``None`` if missing/torn (caller retries next poll)."""
    try:
        with Path(path).open() as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


# ------------------------------------------------------------- lease filenames

def lease_filename(key: str, epoch: int) -> str:
    return f"{key}.e{epoch}.json"


def parse_lease_filename(name: str) -> tuple[str, int] | None:
    """``"<key>.e<epoch>.json"`` → ``(key, epoch)``, else ``None``."""
    if not name.endswith(".json"):
        return None
    key, sep, epoch = name[:-len(".json")].rpartition(".e")
    if not sep or not key or not epoch.isdigit():
        return None
    return key, int(epoch)


def scan_leases(run_dir: str | Path, state: str) -> dict[str, tuple[int, Path]]:
    """``key -> (highest epoch, path)`` for one lease state directory.

    Lower-epoch duplicates (stale fencing losers) are ignored; the
    broker unlinks them during its zombie sweep.
    """
    directory = state_dir(run_dir, state)
    out: dict[str, tuple[int, Path]] = {}
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return out
    for name in names:
        parsed = parse_lease_filename(name)
        if parsed is None:
            continue
        key, epoch = parsed
        if key not in out or epoch > out[key][0]:
            out[key] = (epoch, directory / name)
    return out


def heartbeat_age(path: str | Path) -> float | None:
    """Seconds since the file's last heartbeat (mtime), or ``None`` if gone."""
    try:
        return max(0.0, time.time() - Path(path).stat().st_mtime)
    except OSError:
        return None


# ------------------------------------------------------------------- batch

def write_batch(run_dir: str | Path, status: str, total: int,
                run_id: str | None = None) -> None:
    assert status in (BATCH_OPEN, BATCH_PAUSED, BATCH_COMPLETE), status
    write_json_atomic(batch_path(run_dir), {
        "status": status, "total": total, "run_id": run_id,
        "updated_unix": time.time()})


def read_batch(run_dir: str | Path) -> dict | None:
    return read_json(batch_path(run_dir))


# ------------------------------------------------------------- worker census

def new_worker_id() -> str:
    """Filesystem-safe, collision-resistant worker identity."""
    host = socket.gethostname().replace("/", "_") or "host"
    return f"{host}-{os.getpid()}-{os.urandom(2).hex()}"


def worker_path(run_dir: str | Path, worker_id: str) -> Path:
    return workers_dir(run_dir) / f"{worker_id}.json"


def scan_workers(run_dir: str | Path) -> dict[str, tuple[Path, dict]]:
    """Every census entry ever written: ``worker_id -> (path, record)``."""
    out: dict[str, tuple[Path, dict]] = {}
    directory = workers_dir(run_dir)
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return out
    for name in names:
        if not name.endswith(".json") or name.startswith("."):
            continue
        path = directory / name
        record = read_json(path)
        if record is not None:
            out[name[:-len(".json")]] = (path, record)
    return out


def live_workers(run_dir: str | Path, ttl: float) -> dict[str, dict]:
    """Census entries whose heartbeat (file mtime) is fresher than ``ttl``."""
    live: dict[str, dict] = {}
    for worker_id, (path, record) in scan_workers(run_dir).items():
        age = heartbeat_age(path)
        if age is not None and age <= ttl:
            live[worker_id] = record
    return live
