"""The sampling knob set, shared by every layer that can request sampling.

A :class:`SamplingConfig` travels from the CLI / scenario spec through
:class:`~repro.experiments.runner.SuiteRunner` and
:class:`~repro.experiments.engine.SimJob` into ``simulate()``.  It is a
frozen dataclass so it can sit inside job payloads that cross process
boundaries, and it fingerprints itself into the result-cache key —
sampled results are *estimates*, so they must never alias the exact
results of unsampled runs (or of runs sampled with different knobs).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping

#: Below this many accesses per window the window is too short for a
#: meaningful signature; plans that cannot reach it fall back to full
#: simulation (recorded in ``SimResult.sampling``).
MIN_WINDOW = 64


@dataclass(frozen=True)
class SamplingConfig:
    """How to sample one simulation.

    ``windows`` is the target number of fixed-size windows the measured
    region is split into (the last window absorbs the remainder);
    ``warmup_windows`` is the cache-warmup prefix simulated — stats
    discarded — before each representative; ``max_clusters`` caps the
    number of representatives actually simulated; ``threshold`` is the
    L1 signature distance under which a window joins an existing
    cluster.  ``seed`` is reserved for seeded clustering variants: the
    greedy leader algorithm shipped here is deterministic and
    seed-independent (pinned by hypothesis tests), so two configs that
    differ only in seed produce identical plans.

    The defaults are calibrated on the golden traces at the fidelity
    scale (``pmp-repro sample validate``: 120k accesses): worst-case
    NIPC error under 2% while executing under 25% of the trace.  At
    much shorter lengths the per-segment boundary cost amortises worse —
    expect wider error there, or re-calibrate with ``sample validate
    --accesses``.
    """

    enabled: bool = True
    windows: int = 40
    warmup_windows: int = 2
    max_clusters: int = 6
    threshold: float = 0.28
    min_window: int = MIN_WINDOW
    seed: int = 0

    def __post_init__(self) -> None:
        if self.windows < 2:
            raise ValueError(f"sampling windows must be >= 2, got {self.windows}")
        if self.warmup_windows < 0:
            raise ValueError("sampling warmup_windows must be >= 0")
        if self.max_clusters < 1:
            raise ValueError("sampling max_clusters must be >= 1")
        if not self.threshold > 0:
            raise ValueError("sampling threshold must be > 0")
        if self.min_window < 1:
            raise ValueError("sampling min_window must be >= 1")

    def fingerprint(self) -> str:
        """Stable identity for cache/journal keys (sampled results are
        estimates keyed by *how* they were sampled)."""
        return ("sampling/v1:"
                f"w={self.windows},k={self.warmup_windows},"
                f"c={self.max_clusters},t={self.threshold!r},"
                f"m={self.min_window},s={self.seed}")

    def to_dict(self) -> dict:
        """JSON-safe form (lands in ``SimResult.sampling`` and bench meta)."""
        return asdict(self)

    @classmethod
    def from_mapping(cls, table: Mapping) -> "SamplingConfig":
        """Build from a scenario's ``sim.sampling`` table (already
        schema-validated; unknown keys raise here as a backstop)."""
        known = {"enabled", "windows", "warmup_windows", "max_clusters",
                 "threshold", "min_window", "seed"}
        unknown = set(table) - known
        if unknown:
            raise KeyError(f"unknown sim.sampling key(s) {sorted(unknown)}")
        return cls(**{key: table[key] for key in known if key in table})
