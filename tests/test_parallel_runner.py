"""Parallel engine + persistent cache: determinism, replay, manifests.

The contract under test:

* ``workers=4`` produces **bit-identical** ``SimResult``s to serial runs
  (same job ordering, prefetchers constructed in the parent).
* A warm persistent cache replays the original numbers exactly, with
  **zero** new ``simulate()`` calls — asserted via the engine counters
  that feed the run manifest (the Fig 8 matrix acceptance criterion).
* The baseline cache key covers the *full* ``SystemConfig`` — configs
  differing in fields the old key ignored (L1D size, core width) no
  longer alias onto stale baseline runs.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.cache import ResultCache, prefetcher_fingerprint
from repro.experiments.engine import ExperimentEngine, SimJob
from repro.experiments.manifest import RunManifest
from repro.experiments.runner import ParallelSuiteRunner, SuiteRunner
from repro.experiments.single_core import run_single_core
from repro.memtrace.workloads import quick_suite
from repro.prefetchers import COMPETITORS
from repro.prefetchers.base import NoPrefetcher
from repro.prefetchers.pmp import PMP, PMPConfig
from repro.sim.params import CacheParams, SystemConfig

SPECS = quick_suite()[:2]
ACCESSES = 3_000
FACTORIES = {"pmp": PMP, "spp+ppf": COMPETITORS["spp+ppf"]}


def result_dicts(results):
    return [r.to_dict() for r in results]


@pytest.fixture(scope="module")
def serial_outcome():
    runner = SuiteRunner(specs=SPECS, accesses=ACCESSES)
    matrix, baselines = runner.suite_comparison(FACTORIES)
    return result_dicts(matrix["pmp"] + matrix["spp+ppf"] + baselines)


class TestParallelDeterminism:
    def test_workers4_bit_identical_to_serial(self, serial_outcome):
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES, workers=4)
        matrix, baselines = runner.suite_comparison(FACTORIES)
        got = result_dicts(matrix["pmp"] + matrix["spp+ppf"] + baselines)
        assert got == serial_outcome

    def test_parallel_unpicklable_factory_falls_back(self, serial_outcome):
        """A closure-built prefetcher still runs (inline) under workers."""
        captured = {"config": PMPConfig()}  # noqa: F841 — closure state

        class Unpicklable(PMP):
            def __reduce__(self):
                raise TypeError("deliberately unpicklable")

        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES, workers=2)
        results = runner.run(lambda: Unpicklable())
        reference = SuiteRunner(specs=SPECS, accesses=ACCESSES).run(PMP)
        for got, want in zip(results, reference):
            got = got.to_dict()
            want = want.to_dict()
            got["prefetcher_name"] = want["prefetcher_name"]
            assert got == want

    def test_parallel_runner_defaults_to_cpu_workers(self):
        runner = ParallelSuiteRunner(specs=SPECS, accesses=ACCESSES)
        assert runner.workers >= 1


class TestPersistentCache:
    def test_warm_cache_replays_exactly_with_zero_simulations(
            self, tmp_path, serial_outcome):
        cold = SuiteRunner(specs=SPECS, accesses=ACCESSES,
                           cache=tmp_path / "cache")
        matrix, baselines = cold.suite_comparison(FACTORIES)
        assert cold.engine.counters.simulated == len(SPECS) * 3
        assert cold.engine.counters.cache_hits == 0
        assert result_dicts(matrix["pmp"] + matrix["spp+ppf"] +
                            baselines) == serial_outcome

        warm = SuiteRunner(specs=SPECS, accesses=ACCESSES,
                           cache=tmp_path / "cache")
        matrix, baselines = warm.suite_comparison(FACTORIES)
        assert warm.engine.counters.simulated == 0
        assert warm.engine.counters.cache_misses == 0
        assert warm.engine.counters.cache_hits == len(SPECS) * 3
        assert result_dicts(matrix["pmp"] + matrix["spp+ppf"] +
                            baselines) == serial_outcome

    def test_fig8_matrix_warm_rerun_simulates_nothing(self, tmp_path):
        """Acceptance: warm-cache Fig 8 rerun performs zero simulate() calls."""
        kwargs = dict(specs=SPECS, accesses=ACCESSES,
                      cache=tmp_path / "fig8-cache")
        run_single_core(SuiteRunner(**kwargs), include_pmp_limit=True)

        warm = SuiteRunner(**kwargs)
        run_single_core(warm, include_pmp_limit=True)
        manifest = warm.manifest("fig8")
        assert manifest.simulated == 0
        assert manifest.cache_misses == 0
        assert manifest.cache_hits == manifest.jobs > 0

    def test_cache_key_distinguishes_prefetcher_params(self):
        default = prefetcher_fingerprint(PMP())
        assert prefetcher_fingerprint(PMP()) == default
        assert prefetcher_fingerprint(
            PMP(PMPConfig(region_bytes=2048))) != default
        assert prefetcher_fingerprint(NoPrefetcher()) != default

    def test_corrupt_cache_entry_is_rebuilt(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = SuiteRunner(specs=SPECS[:1], accesses=ACCESSES, cache=cache)
        first = runner.run(PMP)
        entry = next(cache.results_dir.glob("*.json"))
        entry.write_text("{not json")
        again = SuiteRunner(specs=SPECS[:1], accesses=ACCESSES,
                            cache=ResultCache(tmp_path)).run(PMP)
        assert result_dicts(first) == result_dicts(again)


class TestBaselineCacheKey:
    def test_configs_differing_in_unkeyed_fields_no_longer_alias(self):
        """Regression: the old 3-field key ignored L1D size and core params."""
        runner = SuiteRunner(specs=SPECS[:1], accesses=ACCESSES)
        base = SystemConfig.default()
        small_l1d = replace(base, l1d=CacheParams(
            size_bytes=16 * 1024, ways=8, hit_latency=5,
            mshr_entries=16, pq_entries=8))
        assert base.fingerprint() != small_l1d.fingerprint()

        default_baselines = runner.baselines(base)
        small_baselines = runner.baselines(small_l1d)
        assert default_baselines is not small_baselines
        assert (small_baselines[0].levels["l1d"].demand_hits
                != default_baselines[0].levels["l1d"].demand_hits)

    def test_narrow_core_gets_its_own_baselines(self):
        runner = SuiteRunner(specs=SPECS[:1], accesses=ACCESSES)
        base = SystemConfig.default()
        narrow = replace(base, core=replace(base.core, width=1))
        assert base.fingerprint() != narrow.fingerprint()
        assert (runner.baselines(narrow)[0].cycles
                > runner.baselines(base)[0].cycles)


class TestManifest:
    def test_manifest_written_and_round_trips(self, tmp_path):
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES,
                             cache=tmp_path / "cache")
        runner.run(PMP)
        path = runner.write_manifest("unit", tmp_path / "manifests")
        assert path.exists()
        loaded = RunManifest.load(path)
        assert loaded.experiment == "unit"
        assert loaded.jobs == len(SPECS)
        assert loaded.simulated == len(SPECS)
        assert loaded.traces == [spec.name for spec in SPECS]
        assert loaded.config_fingerprint == runner.config.fingerprint()
        assert loaded.wall_seconds > 0
        assert loaded.git_sha  # "unknown" outside git, a SHA inside


class TestEngineDirect:
    def test_engine_preserves_job_order(self):
        traces = [spec.build(1_000) for spec in SPECS]
        jobs = [SimJob(trace, NoPrefetcher(), SystemConfig.default())
                for trace in traces]
        results = ExperimentEngine(workers=3).run_jobs(jobs)
        assert [r.trace_name for r in results] == [t.name for t in traces]

    def test_nipc_grid_matches_per_config_runs(self):
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES)
        configs = [("3200", SystemConfig.default()),
                   ("1600", SystemConfig.default().with_dram_rate(1600))]
        grid = runner.nipc_grid({"pmp": PMP}, configs)

        fresh = SuiteRunner(specs=SPECS, accesses=ACCESSES)
        expected = [(label, fresh.geomean_nipc(PMP, cfg))
                    for label, cfg in configs]
        assert grid["pmp"] == expected


class TestTraceEvents:
    """Opt-in event tracing through the cached, parallel engine."""

    def test_trace_events_salts_cache_key_only_when_on(self):
        trace = SPECS[0].build(1_000)
        plain = SimJob(trace, NoPrefetcher(), SystemConfig.default())
        traced = SimJob(trace, NoPrefetcher(), SystemConfig.default(),
                        trace_events=True)
        off = SimJob(trace, NoPrefetcher(), SystemConfig.default(),
                     trace_events=False)
        assert traced.key() != plain.key()
        assert off.key() == plain.key()

    def test_traced_run_matches_untraced_timing(self):
        """The observer reads events; it must not change the simulation."""
        plain = SuiteRunner(specs=SPECS, accesses=ACCESSES).run(PMP)
        traced = SuiteRunner(specs=SPECS, accesses=ACCESSES,
                             trace_events=True).run(PMP)
        for p, t in zip(plain, traced):
            assert t.event_counters is not None
            t_dict = t.to_dict()
            t_dict.pop("event_counters")
            assert t_dict == p.to_dict()

    def test_event_totals_accumulate_and_reach_manifest(self):
        runner = SuiteRunner(specs=SPECS, accesses=ACCESSES,
                             trace_events=True)
        results = runner.run(NoPrefetcher)
        totals = runner.engine.counters.event_totals
        assert totals["CacheAccess"]["L1D"] == sum(
            r.event_counters["CacheAccess"]["L1D"] for r in results)
        manifest = runner.manifest("unit")
        assert manifest.extra["event_counters"] == totals

    def test_traced_results_replay_from_cache(self, tmp_path):
        cold = SuiteRunner(specs=SPECS, accesses=ACCESSES,
                           cache=tmp_path, trace_events=True)
        first = cold.run(NoPrefetcher)
        warm = SuiteRunner(specs=SPECS, accesses=ACCESSES,
                           cache=tmp_path, trace_events=True)
        replayed = warm.run(NoPrefetcher)
        assert warm.engine.counters.simulated == 0
        assert result_dicts(replayed) == result_dicts(first)
        # Cache hits still feed the batch's event totals.
        assert (warm.engine.counters.event_totals
                == cold.engine.counters.event_totals)

    def test_parallel_traced_run_bit_identical_to_serial(self):
        serial = SuiteRunner(specs=SPECS, accesses=ACCESSES,
                             trace_events=True).run(PMP)
        parallel = SuiteRunner(specs=SPECS, accesses=ACCESSES,
                               trace_events=True, workers=4).run(PMP)
        assert result_dicts(parallel) == result_dicts(serial)
