"""The full prefetcher zoo on one workload.

Runs every prefetcher in the library — the paper's five, the related-work
anchors, and the extensions — on a single mixed workload and prints a
ranking with storage, coverage and traffic.  A one-screen summary of the
whole design space the paper positions PMP in.

Run:  python examples/prefetcher_zoo.py
"""

from repro.memtrace.workloads import quick_suite
from repro.prefetchers import (
    GHB,
    ISB,
    PMP,
    VLDP,
    Matryoshka,
    Triage,
    BandwidthAdaptivePMP,
    BestOffset,
    Bingo,
    DesignB,
    DSPatch,
    NextLine,
    OraclePrefetcher,
    Pythia,
    SMSPrefetcher,
    SPPWithPPF,
    StridePrefetcher,
    make_pmp_limit,
)
from repro.sim.engine import simulate
from repro.storage import table_v

STORAGE_KIB = {  # Table V where the paper gives one; '-' otherwise
    "dspatch": 3.6, "bingo": 127.8, "spp+ppf": 48.4, "pythia": 25.5,
    "pmp": 4.3, "pmp-limit": 4.3, "pmp-bw": 4.3,
}


def main() -> None:
    trace = quick_suite()[0].build(25_000)
    baseline = simulate(trace)
    print(f"workload {trace.name}: {len(trace)} accesses, baseline IPC "
          f"{baseline.ipc:.3f}\n")

    zoo = [
        NextLine(degree=2), StridePrefetcher(), BestOffset(),
        SMSPrefetcher(), VLDP(), Matryoshka(), GHB(), ISB(), Triage(),
        DesignB(32), DSPatch(), Bingo(), SPPWithPPF(), Pythia(),
        PMP(), make_pmp_limit(), BandwidthAdaptivePMP(),
        OraclePrefetcher(trace, depth=12, lead=8),
    ]
    rows = []
    for prefetcher in zoo:
        result = simulate(trace, prefetcher)
        rows.append((result.nipc(baseline), prefetcher.name, result))

    budgets = table_v()
    print(f"{'prefetcher':<12} {'NIPC':>6} {'storage':>8} {'covL1':>6} "
          f"{'covL2':>6} {'NMT':>6}")
    for nipc, name, result in sorted(rows, reverse=True):
        storage = STORAGE_KIB.get(name)
        storage_text = f"{storage:.1f}KB" if storage else "-"
        print(f"{name:<12} {nipc:>6.3f} {storage_text:>8} "
              f"{result.coverage(baseline, 'l1d') * 100:>5.1f}% "
              f"{result.coverage(baseline, 'l2c') * 100:>5.1f}% "
              f"{result.nmt(baseline):>6.2f}")
    print("\n(oracle = trace-peeking upper bound, not hardware;")
    print(" paper storage budgets per Table V, 4.3KB for all PMP variants)")
    assert budgets["pmp"].total_kib < budgets["bingo"].total_kib


if __name__ == "__main__":
    main()
