"""Cache level: LRU, deferred fills, MSHRs, PQs, prefetch accounting."""

from hypothesis import given, strategies as st

from repro.sim.cache import Cache
from repro.sim.params import CacheParams


def small_cache(ways=2, sets=2, mshr=4, pq=4):
    return Cache(CacheParams(size_bytes=64 * ways * sets, ways=ways,
                             hit_latency=1, mshr_entries=mshr, pq_entries=pq))


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.lookup(10, 0.0)
        cache.fill_now(10, 0.0)
        assert cache.lookup(10, 1.0)
        assert cache.stats.demand_hits == 1
        assert cache.stats.demand_misses == 1

    def test_lru_eviction_order(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill_now(0, 0.0)
        cache.fill_now(1, 0.0)
        cache.lookup(0, 1.0)            # 0 becomes MRU
        victim, _ = cache.fill_now(2, 2.0)
        assert victim == 1

    def test_refill_does_not_evict(self):
        cache = small_cache(ways=2, sets=1)
        cache.fill_now(0, 0.0)
        cache.fill_now(1, 0.0)
        victim, _ = cache.fill_now(0, 1.0)
        assert victim is None
        assert cache.resident_lines() == 2

    def test_refill_never_marks_demand_line_as_prefetch(self):
        cache = small_cache()
        cache.fill_now(5, 0.0)
        cache.fill_now(5, 1.0, prefetched=True)
        cache.lookup(5, 2.0)
        assert cache.stats.useful_prefetches == 0

    def test_write_sets_dirty(self):
        cache = small_cache()
        cache.fill_now(5, 0.0)
        cache.lookup(5, 1.0, is_write=True)
        assert cache.probe(5).dirty


class TestDeferredFills:
    def test_scheduled_fill_not_resident_until_ready(self):
        cache = small_cache()
        cache.schedule_fill(7, ready=100.0)
        assert not cache.contains(7)
        ready = cache.pop_ready_fills(50.0)
        assert ready == []
        ready = cache.pop_ready_fills(100.0)
        assert len(ready) == 1 and ready[0].line == 7

    def test_fills_pop_in_ready_order(self):
        cache = small_cache()
        cache.schedule_fill(1, ready=30.0)
        cache.schedule_fill(2, ready=10.0)
        cache.schedule_fill(3, ready=20.0)
        lines = [f.line for f in cache.pop_ready_fills(100.0)]
        assert lines == [2, 3, 1]


class TestPrefetchAccounting:
    def test_useful_on_demand_hit(self):
        cache = small_cache()
        cache.fill_now(3, 0.0, prefetched=True)
        cache.lookup(3, 1.0)
        assert cache.stats.useful_prefetches == 1
        # Second hit doesn't double count.
        cache.lookup(3, 2.0)
        assert cache.stats.useful_prefetches == 1

    def test_useless_on_eviction(self):
        cache = small_cache(ways=1, sets=1)
        cache.fill_now(0, 0.0, prefetched=True)
        cache.fill_now(1, 1.0)
        assert cache.stats.useless_prefetches == 1

    def test_useless_on_invalidate(self):
        cache = small_cache()
        cache.fill_now(0, 0.0, prefetched=True)
        assert cache.invalidate(0)
        assert cache.stats.useless_prefetches == 1
        assert not cache.invalidate(0)

    def test_flush_counts_residents(self):
        cache = small_cache()
        cache.fill_now(0, 0.0, prefetched=True)
        cache.fill_now(1, 0.0, prefetched=True)
        cache.lookup(0, 1.0)
        cache.flush_prefetch_accounting()
        assert cache.stats.useful_prefetches == 1
        assert cache.stats.useless_prefetches == 1

    def test_accuracy(self):
        cache = small_cache()
        cache.fill_now(0, 0.0, prefetched=True)
        cache.fill_now(1, 0.0, prefetched=True)
        cache.lookup(0, 1.0)
        cache.invalidate(1)
        assert cache.stats.accuracy() == 0.5


class TestMSHR:
    def test_allocate_and_pending(self):
        cache = small_cache()
        cache.mshr_allocate(9, 50.0, now=0.0)
        assert cache.mshr_pending(9) == 50.0
        assert cache.mshr_free(0.0) == 3

    def test_prune_releases_completed(self):
        cache = small_cache()
        cache.mshr_allocate(9, 50.0)
        assert cache.mshr_free(60.0) == 4

    def test_prefetch_flag(self):
        cache = small_cache()
        cache.mshr_allocate(9, 50.0, is_prefetch=True)
        assert cache.mshr_is_prefetch(9)
        cache.mshr_allocate(9, 50.0, is_prefetch=False)
        assert not cache.mshr_is_prefetch(9)

    def test_last_mshr_reserved_for_demands(self):
        cache = small_cache(mshr=2)
        cache.mshr_allocate(1, 100.0)
        assert not cache.mshr_has_room_for_prefetch(0.0)
        cache.mshr_release(1)
        assert cache.mshr_has_room_for_prefetch(0.0)

    def test_earliest(self):
        cache = small_cache()
        cache.mshr_allocate(1, 30.0)
        cache.mshr_allocate(2, 20.0)
        assert cache.mshr_earliest() == 20.0


class TestPQ:
    def test_occupancy_and_prune(self):
        cache = small_cache(pq=2)
        cache.pq_push(10.0)
        cache.pq_push(20.0)
        assert cache.pq_free(0.0) == 0
        assert cache.pq_free(15.0) == 1
        assert cache.pq_free(25.0) == 2


@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                max_size=300))
def test_occupancy_never_exceeds_capacity(lines):
    cache = small_cache(ways=3, sets=4)
    for i, line in enumerate(lines):
        cache.fill_now(line, float(i))
        for s in cache._sets:
            assert len(s) <= cache.ways
    assert cache.resident_lines() <= cache.ways * cache.num_sets


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                          st.booleans()), min_size=1, max_size=200))
def test_accounting_identity(events):
    """useful + useless never exceeds prefetch fills after a flush."""
    cache = small_cache(ways=2, sets=2)
    for i, (line, prefetched) in enumerate(events):
        if cache.probe(line) is None:
            cache.fill_now(line, float(i), prefetched=prefetched)
        else:
            cache.lookup(line, float(i))
    cache.flush_prefetch_accounting()
    stats = cache.stats
    assert stats.useful_prefetches + stats.useless_prefetches == stats.prefetch_fills
