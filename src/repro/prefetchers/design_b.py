"""Design B — the identical-pattern-only alternative (Section V-E1, Fig 11).

Instead of merging *similar* patterns into counter vectors, Design B stores
whole anchored bit vectors in a set-associative cache indexed by trigger
offset and counts exact repetitions; a pattern is replayed (ANE-style, all
its offsets at once) when its repetition counter clears a threshold.

Table VIII sweeps the associativity (8/32/128/512 ways): performance grows
with ways but never reaches PMP because distinct-but-similar patterns
thrash each other's entries — the motivation for counting-based merging.
"""

from __future__ import annotations

from collections import OrderedDict

from ..memtrace.access import lines_per_region, region_of
from .base import FillLevel, Prefetcher, PrefetchRequest, SystemView  # noqa: F401
from .pmp import PrefetchBuffer
from .sms import CapturedPattern, PatternCaptureFramework


class DesignB(Prefetcher):
    """Set-associative identical-pattern store with repetition counters."""

    name = "design-b"

    def __init__(self, ways: int = 32, *, region_bytes: int = 4096,
                 counter_max: int = 31, t_l1d: int = 16, t_l2c: int = 5,
                 pb_entries: int = 16) -> None:
        self.ways = ways
        self.region_bytes = region_bytes
        self.pattern_length = lines_per_region(region_bytes)
        self.counter_max = counter_max
        self.t_l1d = t_l1d
        self.t_l2c = t_l2c
        self.capture = PatternCaptureFramework(region_bytes)
        # One set per trigger offset; each set maps anchored vector -> count.
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self.pattern_length)]
        self.pb = PrefetchBuffer(pb_entries)

    # ------------------------------------------------------------- training

    def _learn(self, pattern: CapturedPattern) -> None:
        entry_set = self._sets[pattern.trigger_offset % self.pattern_length]
        anchored = pattern.anchored()
        count = entry_set.get(anchored)
        if count is None:
            if len(entry_set) >= self.ways:
                entry_set.popitem(last=False)
            entry_set[anchored] = 1
        else:
            entry_set[anchored] = min(self.counter_max, count + 1)
            entry_set.move_to_end(anchored)

    # ------------------------------------------------------------ prediction

    def _predict(self, trigger_offset: int) -> tuple[int, FillLevel] | None:
        """Best stored pattern for this trigger: highest repetition count."""
        entry_set = self._sets[trigger_offset % self.pattern_length]
        best_bits, best_count = 0, 0
        for bits, count in entry_set.items():
            if count > best_count:
                best_bits, best_count = bits, count
        if best_count >= self.t_l1d:
            return best_bits, FillLevel.L1D
        if best_count >= self.t_l2c:
            return best_bits, FillLevel.L2C
        return None

    def on_access(self, pc: int, address: int, cycle: float, hit: bool,
                  view: SystemView) -> list[PrefetchRequest]:
        is_trigger, offset, completed = self.capture.observe(pc, address)
        for pattern in completed:
            self._learn(pattern)
        region = region_of(address, self.region_bytes)
        if is_trigger:
            predicted = self._predict(offset)
            if predicted is not None:
                bits, level = predicted
                length = self.pattern_length
                targets = []
                for i in sorted(range(1, length), key=lambda i: min(i, length - i)):
                    if bits >> i & 1:
                        absolute = (offset + i) % length
                        targets.append((region + (absolute << 6), level))
                if targets:
                    self.pb.insert(region, targets)
        # Same PB discipline as PMP so the comparison isolates the
        # pattern-storage strategy, which is what Table VIII varies.
        return self.pb.drain(region, view)

    def on_evict(self, line_address: int) -> None:
        pattern = self.capture.end_region(region_of(line_address, self.region_bytes))
        if pattern is not None:
            self._learn(pattern)
