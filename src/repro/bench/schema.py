"""The ``BENCH_<name>.json`` document schema and its validator.

A bench document is self-describing: besides the numbers it pins the
schema version (so readers can reject documents they do not understand)
and an environment fingerprint (so a comparison against a baseline from
different hardware is visibly apples-to-oranges).  The validator is
hand-rolled — the container deliberately has no jsonschema dependency —
and returns a list of human-readable problems instead of raising, so
callers can report every defect at once.
"""

from __future__ import annotations

from typing import Any

BENCH_SCHEMA_VERSION = 1

# Document-level required fields and their types.
_DOC_FIELDS: dict[str, type | tuple[type, ...]] = {
    "schema_version": int,
    "name": str,
    "kind": str,
    "created_unix": (int, float),
    "environment": dict,
    "benchmarks": list,
}

_KINDS = ("micro", "macro")

_ENV_FIELDS: dict[str, type | tuple[type, ...]] = {
    "python": str,
    "implementation": str,
    "platform": str,
    "machine": str,
    "cpu_count": int,
    "git_sha": str,
}

_BENCH_FIELDS: dict[str, type | tuple[type, ...]] = {
    "name": str,
    "repeats": int,
    "number": int,
    "per_repeat_seconds": list,
    "wall_seconds": (int, float),
    "throughput": (int, float),
    "units": str,
    "profile": list,
    "meta": dict,
}

_PROFILE_FIELDS: dict[str, type | tuple[type, ...]] = {
    "function": str,
    "ncalls": int,
    "tottime": (int, float),
    "cumtime": (int, float),
}


def _check_fields(problems: list[str], where: str, data: Any,
                  spec: dict[str, type | tuple[type, ...]]) -> bool:
    if not isinstance(data, dict):
        problems.append(f"{where}: expected an object, got {type(data).__name__}")
        return False
    ok = True
    for field, types in spec.items():
        if field not in data:
            problems.append(f"{where}: missing required field {field!r}")
            ok = False
        elif not isinstance(data[field], types) or isinstance(data[field], bool):
            problems.append(
                f"{where}.{field}: expected {types}, got {type(data[field]).__name__}")
            ok = False
    return ok


def validate_bench(doc: Any) -> list[str]:
    """Validate one bench document; returns the list of problems (empty = valid)."""
    problems: list[str] = []
    if not _check_fields(problems, "document", doc, _DOC_FIELDS):
        return problems

    if doc["schema_version"] != BENCH_SCHEMA_VERSION:
        problems.append(
            f"document.schema_version: expected {BENCH_SCHEMA_VERSION}, "
            f"got {doc['schema_version']}")
    if doc["kind"] not in _KINDS:
        problems.append(f"document.kind: expected one of {_KINDS}, got {doc['kind']!r}")

    _check_fields(problems, "environment", doc["environment"], _ENV_FIELDS)

    if not doc["benchmarks"]:
        problems.append("document.benchmarks: must contain at least one benchmark")
    seen: set[str] = set()
    for i, bench in enumerate(doc["benchmarks"]):
        where = f"benchmarks[{i}]"
        if not _check_fields(problems, where, bench, _BENCH_FIELDS):
            continue
        name = bench["name"]
        if name in seen:
            problems.append(f"{where}: duplicate benchmark name {name!r}")
        seen.add(name)
        if bench["repeats"] < 1:
            problems.append(f"{where}.repeats: must be >= 1")
        if bench["number"] < 1:
            problems.append(f"{where}.number: must be >= 1")
        if len(bench["per_repeat_seconds"]) != bench["repeats"]:
            problems.append(
                f"{where}.per_repeat_seconds: length "
                f"{len(bench['per_repeat_seconds'])} != repeats {bench['repeats']}")
        if any(not isinstance(s, (int, float)) or s < 0
               for s in bench["per_repeat_seconds"]):
            problems.append(f"{where}.per_repeat_seconds: entries must be "
                            "non-negative numbers")
        if bench["wall_seconds"] <= 0:
            problems.append(f"{where}.wall_seconds: must be > 0")
        if bench["throughput"] <= 0:
            problems.append(f"{where}.throughput: must be > 0")
        for j, row in enumerate(bench["profile"]):
            _check_fields(problems, f"{where}.profile[{j}]", row, _PROFILE_FIELDS)
    return problems
