"""Build your own prefetcher against the library's Prefetcher API.

The simulator treats prefetchers as pure policy objects: observe L1D
loads, return PrefetchRequests.  This example implements a tiny
"trigger-offset next-K" prefetcher in ~30 lines — a poor man's PMP that
keeps one 2-bit confidence counter per trigger offset instead of a whole
counter vector — and benchmarks it between NextLine and full PMP.

Run:  python examples/custom_prefetcher.py
"""

from repro import PMP, quick_suite
from repro.memtrace.access import region_of
from repro.prefetchers import NextLine, Prefetcher, PrefetchRequest
from repro.prefetchers.base import FillLevel, SystemView
from repro.prefetchers.sms import PatternCaptureFramework
from repro.sim.engine import simulate


class TriggerNextK(Prefetcher):
    """Prefetch the next K lines after a trigger, gated per trigger offset.

    Keeps a 2-bit confidence counter per trigger offset: it counts up
    when captured patterns were mostly-forward runs, down otherwise, and
    prefetches only from confident triggers.
    """

    name = "trigger-next-k"

    def __init__(self, k: int = 8) -> None:
        self.k = k
        self.capture = PatternCaptureFramework(4096)
        self.confidence = [1] * 64

    def _learn(self, pattern) -> None:
        anchored = pattern.anchored()
        forward_run = all(anchored >> i & 1 for i in range(min(4, 64)))
        slot = pattern.trigger_offset
        if forward_run:
            self.confidence[slot] = min(3, self.confidence[slot] + 1)
        else:
            self.confidence[slot] = max(0, self.confidence[slot] - 1)

    def on_evict(self, line_address: int) -> None:
        pattern = self.capture.end_region(region_of(line_address))
        if pattern is not None:
            self._learn(pattern)

    def on_access(self, pc: int, address: int, cycle: float, hit: bool,
                  view: SystemView) -> list[PrefetchRequest]:
        is_trigger, offset, completed = self.capture.observe(pc, address)
        for pattern in completed:
            self._learn(pattern)
        if not is_trigger or self.confidence[offset] < 2:
            return []
        region = region_of(address)
        budget = min(self.k, view.prefetch_headroom(FillLevel.L2C))
        return [PrefetchRequest(address=region + ((offset + i) % 64) * 64,
                                level=FillLevel.L2C)
                for i in range(1, budget + 1)]


def main() -> None:
    trace = quick_suite()[1].build(25_000)
    baseline = simulate(trace)
    print(f"workload {trace.name}: baseline IPC {baseline.ipc:.3f}\n")
    print(f"{'prefetcher':<16} {'NIPC':>6} {'L2C cov':>8} {'NMT':>6}")
    for prefetcher in (NextLine(degree=2), TriggerNextK(k=8), PMP()):
        result = simulate(trace, prefetcher)
        print(f"{prefetcher.name:<16} {result.nipc(baseline):>6.3f} "
              f"{result.coverage(baseline, 'l2c') * 100:>7.1f}% "
              f"{result.nmt(baseline):>6.2f}")
    print("\nThe custom policy reuses the SMS capture framework and the")
    print("SystemView headroom signals — the same substrate PMP runs on.")


if __name__ == "__main__":
    main()
