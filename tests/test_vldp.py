"""VLDP: longest-matching-history delta prediction."""

import pytest

from repro.prefetchers.base import NullSystemView
from repro.prefetchers.vldp import VLDP, _DeltaTable

VIEW = NullSystemView()
PAGE = 0xA000_0000


def feed(vldp, offsets, page=PAGE):
    requests = []
    for offset in offsets:
        requests = vldp.on_access(0x400, page + offset * 64, 0.0, False, VIEW)
    return requests


class TestDeltaTable:
    def test_learns_and_predicts(self):
        table = _DeltaTable(history_length=2)
        for _ in range(3):
            table.update((1, 2), 3)
        assert table.predict((1, 2)) == (3, 3)

    def test_wrong_history_length_ignored(self):
        table = _DeltaTable(history_length=2)
        table.update((1,), 3)
        assert table.predict((1,)) is None

    def test_confidence_saturates(self):
        table = _DeltaTable(history_length=1)
        for _ in range(100):
            table.update((2,), 4)
        assert table.predict((2,))[1] == 15

    def test_capacity_bounded(self):
        table = _DeltaTable(history_length=1, entries=4)
        for i in range(10):
            table.update((i,), 1)
        assert len(table._table) <= 4


class TestVLDP:
    def test_constant_stride(self):
        vldp = VLDP(degree=2)
        requests = feed(vldp, [0, 3, 6, 9, 12, 15, 18])
        targets = {(r.address - PAGE) // 64 for r in requests}
        assert 21 in targets
        assert 24 in targets  # chained lookahead

    def test_alternating_pattern_needs_long_history(self):
        """Deltas 1,3,1,3,...: a last-delta predictor conflates the two
        states; a 2-delta history disambiguates them."""
        vldp = VLDP(degree=1, min_confidence=2)
        offsets = [0]
        for i in range(14):
            offsets.append(offsets[-1] + (1 if i % 2 == 0 else 3))
        requests = feed(vldp, offsets)
        # 14 deltas consumed (1,3 repeating, starting at 1): the next one
        # is delta #15 = 1, so history ...1,3 must predict +1.
        assert requests
        predicted = (requests[0].address - PAGE) // 64
        assert predicted == offsets[-1] + 1

    def test_silent_without_confidence(self):
        vldp = VLDP(min_confidence=3)
        requests = feed(vldp, [0, 5])
        assert requests == []

    def test_stays_in_page(self):
        vldp = VLDP(degree=8)
        requests = feed(vldp, [40, 45, 50, 55, 60])
        for r in requests:
            assert r.address & ~0xFFF == PAGE

    def test_pages_tracked_independently(self):
        vldp = VLDP(degree=1)
        feed(vldp, [0, 2, 4, 6, 8], page=PAGE)
        requests = feed(vldp, [1, 3, 5, 7, 9], page=PAGE + 4096)
        assert requests  # second page benefits from shared delta tables

    def test_invalid_history_rejected(self):
        with pytest.raises(ValueError):
            VLDP(max_history=0)

    def test_runs_in_simulator(self):
        import numpy as np
        from repro.memtrace import synthetic as syn
        from repro.memtrace.trace import Trace
        from repro.sim.engine import simulate
        trace = Trace("s")
        trace.extend(syn.strided(np.random.default_rng(0), 4000, stride=2))
        base = simulate(trace)
        result = simulate(trace, VLDP())
        assert result.nipc(base) > 1.0
