"""Per-window access-vector signatures.

A window's signature is a small fixed-length vector of normalised
features describing *how* the window touches memory, computed from the
trace's packed arrays in vectorised NumPy:

* **stride histogram** (9 buckets) — successive cacheline deltas
  bucketed by sign and magnitude (0, ±1, ±2–7, ±8–63, ±64+), the
  feature the paper's pattern merging is built on;
* **reuse-distance buckets** (5) — accesses since the previous touch of
  the same cacheline (1–7, 8–63, 64–511, 512+), plus first touches;
* **footprints** — unique 4KB regions and unique cachelines over the
  window length;
* **write fraction** and a squashed **mean instruction gap** (the gap
  stream drives the timing model, so two windows with equal address
  behaviour but different gaps must not merge).

Every component is a fraction of the window length, so signatures of
different-length windows (the last window absorbs the remainder) are
directly comparable and L1 distances live on a stable scale.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..memtrace.access import CACHELINE_BITS, DEFAULT_REGION_BYTES
from ..memtrace.trace import Trace

#: Bucket edges for successive cacheline deltas: 9 buckets
#: (<=-64, -63..-8, -7..-2, -1, 0, +1, +2..7, +8..63, >=64).
_STRIDE_EDGES = np.array([-63.5, -7.5, -1.5, -0.5, 0.5, 1.5, 7.5, 63.5])

#: Bucket edges for reuse distances (in accesses): 4 buckets
#: (1..7, 8..63, 64..511, >=512); first touches get their own bucket.
_REUSE_EDGES = np.array([7.5, 63.5, 511.5])

#: Total signature dimensionality.
SIGNATURE_DIM = len(_STRIDE_EDGES) + 1 + len(_REUSE_EDGES) + 1 + 1 + 4


def _reuse_buckets(lines: np.ndarray) -> tuple[np.ndarray, int]:
    """Histogram of within-window reuse distances plus first-touch count.

    Stable-sorting the line ids groups equal lines while keeping their
    positions in window order, so consecutive entries of one group are
    exactly the successive touches of one cacheline.
    """
    n = len(lines)
    if n < 2:
        return np.zeros(len(_REUSE_EDGES) + 1), n
    order = np.argsort(lines, kind="stable")
    sorted_lines = lines[order]
    same = sorted_lines[1:] == sorted_lines[:-1]
    distances = (order[1:] - order[:-1])[same]
    counts = np.bincount(np.digitize(distances, _REUSE_EDGES),
                         minlength=len(_REUSE_EDGES) + 1)
    first_touches = n - int(same.sum())
    return counts.astype(np.float64), first_touches


def window_signatures(trace: Trace,
                      bounds: Sequence[tuple[int, int]]) -> np.ndarray:
    """Signatures for the given ``[start, end)`` windows of one trace.

    Returns a ``(len(bounds), SIGNATURE_DIM)`` float array; rows are
    deterministic in (trace contents, bounds) only.
    """
    _, addrs, writes, gaps = trace.arrays()
    # Addresses fit comfortably in int64 after dropping the line offset
    # (the multi-core rebase slots top out near 2^47), and signed ints
    # make the delta arithmetic natural.
    lines = (addrs >> np.uint64(CACHELINE_BITS)).astype(np.int64)
    region_shift = int(DEFAULT_REGION_BYTES).bit_length() - 1
    regions = (addrs >> np.uint64(region_shift)).astype(np.int64)

    out = np.zeros((len(bounds), SIGNATURE_DIM))
    for row, (start, end) in enumerate(bounds):
        n = end - start
        if n <= 0:
            raise ValueError(f"empty window [{start}:{end})")
        window_lines = lines[start:end]

        deltas = np.diff(window_lines)
        stride = np.bincount(np.digitize(deltas, _STRIDE_EDGES),
                             minlength=len(_STRIDE_EDGES) + 1
                             ).astype(np.float64)
        stride /= max(1, n - 1)

        reuse, first_touches = _reuse_buckets(window_lines)
        reuse /= n

        region_footprint = len(np.unique(regions[start:end])) / n
        line_footprint = len(np.unique(window_lines)) / n
        write_fraction = float(writes[start:end].mean())
        mean_gap = float(gaps[start:end].mean())

        out[row, :len(stride)] = stride
        cursor = len(stride)
        out[row, cursor:cursor + len(reuse)] = reuse
        cursor += len(reuse)
        out[row, cursor:] = (first_touches / n, region_footprint,
                             line_footprint, write_fraction,
                             mean_gap / (1.0 + mean_gap))
    return out
