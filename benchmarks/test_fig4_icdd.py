"""Fig 4 / Observation 3 — ICDD similarity of patterns per clustering feature.

Paper shape: patterns clustered by Trigger Offset have the smallest
(best) average ICDD; hashed PC+Address the largest; PC sits in between.
"""

from repro.experiments.motivation import fig4_report, run_fig4


def test_fig4_icdd(benchmark, analysis_traces):
    summaries = benchmark.pedantic(run_fig4, args=(analysis_traces,),
                                   rounds=1, iterations=1)
    print()
    print(fig4_report(summaries))

    means = {s.feature_name: s.mean for s in summaries}
    assert means["Trigger Offset"] == min(means.values()), \
        "Obs 3: trigger offset clusters the most similar patterns"
    assert means["Trigger Offset"] < means["PC"], \
        "Obs 3: trigger offset beats the PC feature"
    assert means["Trigger Offset"] < means["PC+Address"], \
        "Obs 3: trigger offset beats hashed PC+Address"
