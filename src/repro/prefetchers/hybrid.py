"""Hybrid prefetching under set-dueling arbitration (beyond the paper).

PMP's spatial bit-vector merging and a temporal Markov engine are
complementary: spatial patterns dominate array/streaming phases, temporal
pairs dominate pointer chasing.  :class:`HybridPrefetcher` runs both
engines side by side and picks, per demand access, whose predictions are
actually issued — using classic **set dueling** (Qureshi et al., ISCA
2007) repurposed for prefetch-engine selection:

* demand pages hash into ``sets`` dueling sets; the first
  ``leader_sets`` are **A-leaders** (always issue engine A's requests),
  the next ``leader_sets`` are **B-leaders**, the rest are followers;
* the event bus's useful/useless prefetch feedback (PR 2) trains a
  saturating **PSEL** counter, but *only* for prefetches issued from
  leader sets — useful credits the issuing engine, useless debits it;
* followers issue the current PSEL winner's requests.

Both engines always *train* on the full access stream (training is
cheap and keeps the loser warm for phase changes); only issue is
arbitrated.  Feedback is attributed through a bounded line→issuer map
that is popped on first use, so one prefetch can never update PSEL
twice (the conservation property the set-dueling hypothesis tests pin).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from .base import FillLevel, Prefetcher, PrefetchRequest, SystemView
from .pmp import PMP
from .triangel import Triangel

_GOLDEN = 0x9E3779B1  # Fibonacci hashing multiplier for page→set spread


class SetDuelingArbiter:
    """PSEL + leader-set bookkeeping, separable for property testing.

    Roles are assigned per demand *page* so whole regions duel
    consistently.  ``psel`` below the midpoint means engine ``a`` is
    winning; ties go to ``a`` (the incumbent paper engine).
    """

    # Default leader fraction is 2/64 per engine (~3%), the classic
    # set-dueling ratio: leaders are the measurement overhead — pages
    # forced to a fixed engine — so few leaders keeps the hybrid within
    # a fraction of a percent of its better constituent while followers
    # still converge (tenants-00 calibration in the scenario catalog).
    def __init__(self, *, sets: int = 64, leader_sets: int = 2,
                 psel_bits: int = 10, attribution_entries: int = 1024) -> None:
        if 2 * leader_sets > sets:
            raise ValueError("leader sets exceed the dueling sets")
        self.sets = sets
        self.leader_sets = leader_sets
        self.psel_max = (1 << psel_bits) - 1
        self._half = 1 << (psel_bits - 1)
        self.psel = self._half
        self.attribution_entries = attribution_entries
        # issued line -> (engine, role at issue time); popped on feedback.
        self._issued: OrderedDict[int, tuple[str, str]] = OrderedDict()

    # -- role/selection -----------------------------------------------------

    def role_of(self, address: int) -> str:
        """'a' / 'b' leader or 'follower', from the demand page."""
        page = address >> 12
        index = ((page * _GOLDEN) >> 16) % self.sets
        if index < self.leader_sets:
            return "a"
        if index < 2 * self.leader_sets:
            return "b"
        return "follower"

    def winner(self) -> str:
        return "a" if self.psel <= self._half else "b"

    def select(self, address: int) -> tuple[str, str]:
        """(engine to issue, role) for one demand access."""
        role = self.role_of(address)
        if role == "follower":
            return self.winner(), role
        return role, role

    # -- attribution & PSEL -------------------------------------------------

    def record_issue(self, line: int, engine: str, role: str) -> None:
        if line in self._issued:
            del self._issued[line]
        elif len(self._issued) >= self.attribution_entries:
            self._issued.popitem(last=False)
        self._issued[line] = (engine, role)

    def issuer_of(self, line: int) -> str | None:
        """Peek the issuing engine without consuming the attribution."""
        entry = self._issued.get(line)
        return entry[0] if entry else None

    def _consume(self, line: int, good: bool) -> str | None:
        entry = self._issued.pop(line, None)
        if entry is None:
            return None
        engine, role = entry
        if role == engine:  # leader-set issue: the measurement we duel on
            toward_a = (engine == "a") == good
            if toward_a:
                self.psel = max(0, self.psel - 1)
            else:
                self.psel = min(self.psel_max, self.psel + 1)
        return engine

    def credit(self, line: int) -> str | None:
        """A prefetched line proved useful; returns the issuing engine."""
        return self._consume(line, good=True)

    def debit(self, line: int) -> str | None:
        """A prefetched line was evicted unused; returns the issuer."""
        return self._consume(line, good=False)

    def forget(self, line: int) -> None:
        self._issued.pop(line, None)


class HybridPrefetcher(Prefetcher):
    """PMP + a temporal engine under set-dueling issue arbitration."""

    name = "hybrid"

    def __init__(self, engine_a: Prefetcher | None = None,
                 engine_b: Prefetcher | None = None, *,
                 arbiter: SetDuelingArbiter | None = None) -> None:
        self.a = engine_a if engine_a is not None else PMP()
        self.b = engine_b if engine_b is not None else Triangel()
        self.arbiter = arbiter if arbiter is not None else SetDuelingArbiter()
        # The hybrid consumes hit runs iff A can and B is a guaranteed
        # no-op on hits — then delegating to A is exactly on_access.
        self.supports_hit_runs = (self.a.supports_hit_runs
                                  and self.b.hit_run_transparent)

    # -- protocol -----------------------------------------------------------

    def on_access(self, pc: int, address: int, cycle: float, hit: bool,
                  view: SystemView) -> list[PrefetchRequest]:
        requests_a = self.a.on_access(pc, address, cycle, hit, view)
        requests_b = self.b.on_access(pc, address, cycle, hit, view)
        if not requests_a and not requests_b:
            return []
        engine, role = self.arbiter.select(address)
        forwarded = requests_a if engine == "a" else requests_b
        for request in forwarded:
            self.arbiter.record_issue(request.address >> 6, engine, role)
        return forwarded

    def hit_run_consume(self, pc: int, address: int) -> bool:
        # B is hit-run transparent (checked in __init__), so a hit only
        # exercises A; A's own hook declines whenever it would emit,
        # which covers every case where the hybrid would need the duel.
        return self.a.hit_run_consume(pc, address)

    def hit_run_consume_block(self, pcs, addrs) -> int:
        return self.a.hit_run_consume_block(pcs, addrs)

    def on_evict(self, line_address: int) -> None:
        self.a.on_evict(line_address)
        self.b.on_evict(line_address)
        self.arbiter.forget(line_address >> 6)

    # -- feedback routing ---------------------------------------------------

    def on_prefetch_fill(self, address: int, level: FillLevel) -> None:
        engine = self.arbiter.issuer_of(address >> 6)
        if engine == "a":
            self.a.on_prefetch_fill(address, level)
        elif engine == "b":
            self.b.on_prefetch_fill(address, level)

    def on_prefetch_useful(self, address: int, level: FillLevel) -> None:
        engine = self.arbiter.credit(address >> 6)
        if engine == "a":
            self.a.on_prefetch_useful(address, level)
        elif engine == "b":
            self.b.on_prefetch_useful(address, level)

    def on_prefetch_useless(self, address: int, level: FillLevel) -> None:
        engine = self.arbiter.debit(address >> 6)
        if engine == "a":
            self.a.on_prefetch_useless(address, level)
        elif engine == "b":
            self.b.on_prefetch_useless(address, level)


def make_hybrid(engine_a: Callable[[], Prefetcher] | None = None,
                engine_b: Callable[[], Prefetcher] | None = None,
                ) -> HybridPrefetcher:
    """Registry-friendly constructor (fresh constituents per instance)."""
    return HybridPrefetcher(engine_a() if engine_a else None,
                            engine_b() if engine_b else None)
