"""CLI: argument handling and one fast end-to-end command."""

import pytest

from repro.cli import COMMANDS, main


class TestParser:
    def test_storage_command_runs(self, capsys):
        assert main(["storage"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "4.3KB" in out or "4.26" in out or "pmp" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_all_commands_registered(self):
        expected = {"fig8", "fig9", "table1", "fig2", "fig4", "fig5",
                    "table8", "extraction", "structures", "table9",
                    "table10", "table11", "fig12a", "fig12b", "fig13",
                    "storage"}
        assert set(COMMANDS) == expected

    def test_table1_small(self, capsys):
        assert main(["table1", "--accesses", "4000", "--traces", "1"]) == 0
        out = capsys.readouterr().out
        assert "Pattern Collision Rate" in out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--accesses", "4000", "--traces", "1"]) == 0
        out = capsys.readouterr().out
        assert "top 10 share" in out

    def test_fig5_small(self, capsys):
        assert main(["fig5", "--accesses", "4000"]) == 0
        out = capsys.readouterr().out
        assert "Trigger Offset" in out

    def test_table9_small(self, capsys):
        assert main(["table9", "--accesses", "3000", "--traces", "1"]) == 0
        out = capsys.readouterr().out
        assert "pattern length" in out and "overhead" in out

    def test_structures_small(self, capsys):
        assert main(["structures", "--accesses", "3000", "--traces", "1"]) == 0
        out = capsys.readouterr().out
        assert "dual" in out

    def test_trace_cache_option(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["table9", "--accesses", "2000", "--traces", "1",
                     "--trace-cache", cache_dir]) == 0
        import pathlib
        assert list(pathlib.Path(cache_dir).glob("*.pmptrc"))


class TestParallelEngineFlags:
    def test_run_prefix_with_workers_and_cache(self, capsys, tmp_path):
        argv = ["run", "table9", "--accesses", "2000", "--traces", "1",
                "--workers", "2", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "Table IX" in out
        assert "manifest:" in out
        manifests = list((tmp_path / "manifests").glob("table9-*.json"))
        assert len(manifests) == 1

    def test_warm_cache_rerun_simulates_nothing(self, capsys, tmp_path):
        import json

        argv = ["table9", "--accesses", "2000", "--traces", "1",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "0 simulated" in capsys.readouterr().out
        warm = max((tmp_path / "manifests").glob("table9-*.json"))
        data = json.loads(warm.read_text())
        assert data["simulated"] == 0
        assert data["cache_hits"] == data["jobs"] > 0

    def test_no_cache_flag_disables_persistence(self, capsys, tmp_path):
        argv = ["table11", "--accesses", "2000", "--traces", "1",
                "--no-cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        assert not (tmp_path / "results").exists()
        # The manifest is still written for observability.
        assert list((tmp_path / "manifests").glob("table11-*.json"))

    def test_trace_events_flag_reports_and_persists_counters(self, capsys,
                                                             tmp_path):
        import json

        argv = ["table11", "--accesses", "2000", "--traces", "1",
                "--trace-events", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "event counters" in out
        assert "CacheAccess" in out
        manifest = max((tmp_path / "manifests").glob("table11-*.json"))
        data = json.loads(manifest.read_text())
        counters = data["extra"]["event_counters"]
        assert counters["CacheAccess"]["L1D"] > 0
