"""The fabric broker: publishes leases, reaps the dead, never hangs.

The broker is embedded in the :class:`~repro.experiments.engine.
ExperimentEngine` (``fabric`` execution mode): it publishes every
pending job as a durable lease plus a pickled payload, then polls the
lease directories, consuming completions into the engine's journal and
cache the moment they land, and running the PR-4 fault policy — promoted
to **per-lease** semantics — against everything else:

* a claim whose heartbeat is older than ``lease_ttl`` is **reaped**:
  attempts+1, epoch+1, republished with a ``FaultPolicy.backoff``
  ``not_before`` stamp (the transport-failure treatment — the machinery
  died, the job is innocent);
* a lease that expires ``FaultPolicy.max_attempts`` times is classified
  as a structured lease-expired :class:`~repro.experiments.faults.
  JobFailure` — a worker-shaped fault can delay a batch, never hang it;
* a worker-reported exception is **deterministic** (the job really ran
  and really raised): no retry, straight to a :class:`JobFailure`
  carrying the worker's traceback, exactly like the process-pool path;
* zero live workers for ``worker_grace`` seconds degrades the remainder
  to in-process execution (loudly, counted in the manifest) — or, with
  ``inline_fallback`` off, fails it as lease expiries.

Crash tolerance is symmetric: a broker that dies and resumes harvests
any ``done/`` records a worker landed while it was gone, so no finished
simulation is ever re-run.
"""

from __future__ import annotations

import logging
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..experiments.faults import (KIND_RAISE, FaultPolicy, JobFailure,
                                  LeaseExpired, lease_expiry_failure)
from ..sim.stats import SimResult
from . import lease as lease_mod
from .lease import FabricConfig, verified_result
from .protocol import (BATCH_COMPLETE, BATCH_OPEN, BATCH_PAUSED,
                       ensure_layout, heartbeat_age, jobs_dir, lease_filename,
                       live_workers, read_json, scan_leases, scan_workers,
                       state_dir, write_batch)

log = logging.getLogger("repro.fabric.broker")

#: The census identity the broker uses when claiming leases itself.
INLINE_WORKER = "broker-inline"


@dataclass
class _LeaseState:
    """Broker-side view of one job's lease."""

    item: object                # engine _WorkItem: index/job/key/payload
    epoch: int = 0
    attempts: int = 0


@dataclass
class FabricBroker:
    """Drives one batch of work items through the lease directories."""

    run_dir: Path
    run_id: str | None
    config: FabricConfig
    policy: FaultPolicy
    counters: object            # EngineCounters (duck-typed)
    #: ``on_result(item, SimResult)`` — place/cache/journal a completion.
    on_result: Callable[[object, SimResult], None]
    #: ``on_failure(failure, cause)`` — record a structured JobFailure.
    on_failure: Callable[[object, BaseException | None], None]
    #: ``inline(item) -> result dict | None`` — simulate in-process
    #: (completing or failing through the engine) and return the result
    #: payload for the on-disk done record, or None on failure.
    inline: Callable[[object], dict | None]
    should_stop: Callable[[], bool] = lambda: False
    sleep: Callable[[float], None] = time.sleep

    _state: dict[str, _LeaseState] = field(default_factory=dict, init=False)
    _outstanding: set[str] = field(default_factory=set, init=False)
    _fallback: bool = field(default=False, init=False)
    _census: dict[str, dict] = field(default_factory=dict, init=False)

    # ------------------------------------------------------------- lifecycle

    def run(self, items: list) -> str:
        """Publish ``items`` and poll to completion.

        Returns :data:`BATCH_COMPLETE` when every job is accounted for
        (result or structured failure) or :data:`BATCH_PAUSED` when
        ``should_stop`` fired — everything consumed so far is already in
        the journal, so a resumed run picks up the rest.
        """
        ensure_layout(self.run_dir)
        self._publish(items)
        last_alive = time.time()
        while self._outstanding:
            if self.should_stop():
                write_batch(self.run_dir, BATCH_PAUSED,
                            len(items), self.run_id)
                return BATCH_PAUSED
            progressed = self._consume_done()
            progressed |= self._consume_failed()
            self._reap_expired()
            live = live_workers(self.run_dir, self.config.lease_ttl)
            self._update_census(live)
            now = time.time()
            if live or progressed:
                last_alive = now
            if (self._outstanding and not self._fallback
                    and not live
                    and now - last_alive > self.config.worker_grace):
                self._handle_worker_collapse()
            if self._fallback:
                self._drain_inline()
            if self._outstanding and not progressed:
                self.sleep(self.config.poll_interval)
        write_batch(self.run_dir, BATCH_COMPLETE, len(items), self.run_id)
        self._update_census(live_workers(self.run_dir, self.config.lease_ttl))
        return BATCH_COMPLETE

    def census_snapshot(self) -> list[dict]:
        """Worker census for the run manifest (stable order)."""
        return [self._census[worker_id]
                for worker_id in sorted(self._census)]

    # ------------------------------------------------------------- publishing

    def _publish(self, items: list) -> None:
        """Write payloads + open leases; harvest work a prior broker lost.

        A completion that landed in ``done/`` after the previous broker
        died (but before the journal recorded it) is consumed here
        instead of being republished — the crash costs nothing.
        """
        leftovers = scan_leases(self.run_dir, "done")
        for item in items:
            key = item.key
            self._state[key] = _LeaseState(item)
            self._outstanding.add(key)
            if key in leftovers:
                record = read_json(leftovers[key][1])
                result = verified_result(record)
                if result is not None:
                    self._sweep_key(key, also_done=False)
                    self._finish(key, record, result)
                    continue
            self._sweep_key(key, also_done=True)
            payload_path = jobs_dir(self.run_dir) / f"{key}.job"
            with payload_path.open("wb") as fh:
                fh.write(pickle.dumps(item.payload))
            lease_mod.publish(self.run_dir, key, 0, {
                "index": item.index,
                "attempts": 0,
                "trace": item.job.trace.name,
                "prefetcher": item.job.prefetcher.name,
                "payload": f"jobs/{key}.job",
            })
        write_batch(self.run_dir, BATCH_OPEN, len(items), self.run_id)

    def _sweep_key(self, key: str, also_done: bool) -> None:
        """Delete stale lease files for a key being (re)published."""
        states = ("open", "claimed", "failed") + (("done",) if also_done else ())
        for state in states:
            directory = state_dir(self.run_dir, state)
            for stale in directory.glob(f"{key}.e*.json"):
                stale.unlink(missing_ok=True)

    # ------------------------------------------------------------ consumption

    def _finish(self, key: str, record: dict | None, result: dict) -> None:
        state = self._state[key]
        self.on_result(state.item, SimResult.from_dict(result))
        self._outstanding.discard(key)
        worker = (record or {}).get("worker")
        if worker and worker != INLINE_WORKER:
            self.counters.fabric_completed += 1
            entry = self._census.setdefault(
                worker, {"worker_id": worker, "jobs_done": 0, "live": False})
            entry["jobs_done"] = entry.get("jobs_done", 0) + 1

    def _consume_done(self) -> bool:
        progressed = False
        for key, (epoch, path) in scan_leases(self.run_dir, "done").items():
            if key not in self._outstanding:
                continue
            record = read_json(path)
            result = verified_result(record)
            if result is None:
                # Torn or corrupt completion: drop the record and treat
                # it as one more transport fault against the lease.
                path.unlink(missing_ok=True)
                self._expire(key, reason="corrupt done record")
                continue
            self._finish(key, record, result)
            # Any lease files the (possibly stale) pipeline left behind.
            self._sweep_key(key, also_done=False)
            progressed = True
        return progressed

    def _consume_failed(self) -> bool:
        progressed = False
        for key, (epoch, path) in scan_leases(self.run_dir, "failed").items():
            if key not in self._outstanding:
                continue
            record = read_json(path)
            if record is None or not isinstance(record.get("failure"), dict):
                path.unlink(missing_ok=True)
                self._expire(key, reason="corrupt failure record")
                continue
            state = self._state[key]
            reported = record["failure"]
            failure = JobFailure(
                index=state.item.index, key=key,
                trace_name=state.item.job.trace.name,
                prefetcher_name=state.item.job.prefetcher.name,
                kind=KIND_RAISE,
                error_type=str(reported.get("error_type", "Exception")),
                message=str(reported.get("message", "")),
                traceback=str(reported.get("traceback", "")),
                attempts=state.attempts + 1)
            self._outstanding.discard(key)
            self._sweep_key(key, also_done=True)
            self.on_failure(failure, None)
            progressed = True
        return progressed

    # ----------------------------------------------------------------- reaping

    def _reap_expired(self) -> None:
        claimed = scan_leases(self.run_dir, "claimed")
        for key, (epoch, path) in claimed.items():
            if key not in self._outstanding:
                path.unlink(missing_ok=True)  # finished elsewhere; stale
                continue
            state = self._state[key]
            if epoch < state.epoch:
                path.unlink(missing_ok=True)  # fenced-off zombie claim
                continue
            state.epoch = max(state.epoch, epoch)
            age = heartbeat_age(path)
            if age is None:
                continue  # completed/reaped between scan and stat
            if age > self.config.lease_ttl:
                self._expire(key, reason=f"heartbeat stale for {age:.1f}s")

    def _expire(self, key: str, reason: str) -> None:
        """One transport fault against a lease: retry or classify."""
        state = self._state[key]
        state.attempts += 1
        self.counters.lease_expired += 1
        log.warning("lease %s… expired (attempt %d/%d): %s", key[:12],
                    state.attempts, self.policy.max_attempts, reason)
        claimed = state_dir(self.run_dir, "claimed") / lease_filename(
            key, state.epoch)
        if state.attempts >= self.policy.max_attempts:
            claimed.unlink(missing_ok=True)
            self._outstanding.discard(key)
            failure = lease_expiry_failure(
                state.item.index, key, state.item.job.trace.name,
                state.item.job.prefetcher.name, state.attempts, reason)
            self.on_failure(failure, LeaseExpired(failure.message))
            return
        record = read_json(claimed) or {
            "index": state.item.index, "attempts": state.attempts - 1,
            "trace": state.item.job.trace.name,
            "prefetcher": state.item.job.prefetcher.name,
            "payload": f"jobs/{key}.job"}
        not_before = time.time() + self.policy.backoff(state.attempts)
        lease_mod.reap(self.run_dir, key, state.epoch, record, not_before)
        state.epoch += 1
        self.counters.lease_reassigned += 1
        self.counters.retried += 1

    # ------------------------------------------------------------ degradation

    def _handle_worker_collapse(self) -> None:
        remaining = len(self._outstanding)
        if self.config.inline_fallback:
            log.warning(
                "fabric: no live workers for %.1fs — completing the "
                "remaining %d job(s) in-process",
                self.config.worker_grace, remaining)
            self._fallback = True
            return
        log.warning(
            "fabric: no live workers for %.1fs and inline fallback is "
            "disabled — failing the remaining %d job(s)",
            self.config.worker_grace, remaining)
        for key in sorted(self._outstanding):
            state = self._state[key]
            state.attempts += 1
            self.counters.lease_expired += 1
            self._sweep_key(key, also_done=True)
            failure = lease_expiry_failure(
                state.item.index, key, state.item.job.trace.name,
                state.item.job.prefetcher.name, state.attempts,
                "no live workers and inline fallback disabled")
            self._outstanding.discard(key)
            self.on_failure(failure, LeaseExpired(failure.message))

    def _drain_inline(self) -> None:
        """Fallback mode: claim whatever is open and simulate it here.

        Claimed-but-dead leases are left to age out through the normal
        reap path (they reopen with their attempt counters intact), so
        the manifest still tells the full story.
        """
        for key, (epoch, _path) in sorted(
                scan_leases(self.run_dir, "open").items()):
            if key not in self._outstanding:
                continue
            if self.should_stop():
                return
            state = self._state[key]
            record = lease_mod.claim(self.run_dir, key, epoch, INLINE_WORKER,
                                     now=float("inf"))
            if record is None:
                continue  # a worker came back and won the race — fine
            state.epoch = max(state.epoch, epoch)
            self.counters.inline_fallbacks += 1
            result = self.inline(state.item)
            if result is not None:
                lease_mod.complete(self.run_dir, record, result)
            else:
                claimed = state_dir(self.run_dir, "claimed") / lease_filename(
                    key, epoch)
                claimed.unlink(missing_ok=True)
            self._outstanding.discard(key)
            self._sweep_key(key, also_done=False)

    # ---------------------------------------------------------------- census

    def _update_census(self, live: dict[str, dict]) -> None:
        for worker_id, (path, record) in scan_workers(self.run_dir).items():
            entry = self._census.setdefault(
                worker_id, {"worker_id": worker_id, "jobs_done": 0})
            entry.update(
                pid=record.get("pid"), host=record.get("host"),
                live=worker_id in live,
                last_heartbeat_age=heartbeat_age(path))
            if isinstance(record.get("jobs_done"), int):
                entry["jobs_done"] = max(entry.get("jobs_done", 0),
                                         record["jobs_done"])
