"""Run manifests: one JSON observability record per experiment run.

A manifest captures what was run (experiment name, trace names, config
fingerprint), where (git SHA), how (worker count, cache directory), and
what it cost (wall time, simulate() calls, cache hit/miss counts).  The
CI smoke job and the warm-cache acceptance test both assert on these
records, and they make "why was this rerun slow/fast?" answerable after
the fact.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path


def current_git_sha(repo_root: str | Path | None = None) -> str:
    """The checked-out commit, or 'unknown' outside a git work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_root,
            capture_output=True, text=True, timeout=10, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"


@dataclass
class RunManifest:
    """Everything worth recording about one experiment run."""

    experiment: str
    git_sha: str = field(default_factory=current_git_sha)
    created_unix: float = field(default_factory=time.time)
    config_fingerprint: str = ""
    workers: int = 0
    accesses: int = 0
    traces: list[str] = field(default_factory=list)
    jobs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0
    wall_seconds: float = 0.0
    cache_dir: str | None = None
    # ---- fault tolerance (see repro.experiments.faults) ----
    #: Journal id of this run; pass to ``--resume`` after an interrupt.
    run_id: str | None = None
    #: Jobs that ended as structured JobFailure records (tracebacks under
    #: ``extra["fault_tolerance"]["failures"]``).
    failed: int = 0
    #: Job executions re-run after a transport fault (timeout/pool crash).
    retried: int = 0
    #: Watchdog deadline expiries.
    timed_out: int = 0
    #: Corrupt cache entries moved to quarantine during this run.
    quarantined: int = 0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    def write(self, directory: str | Path) -> Path:
        """Write ``<experiment>-<timestamp-ms>.json`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        stamp = int(self.created_unix * 1000)
        path = directory / f"{self.experiment}-{stamp}.json"
        with path.open("w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        """Read a manifest back (tolerates unknown future fields)."""
        with Path(path).open() as fh:
            data = json.load(fh)
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})
