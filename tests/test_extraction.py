"""Extraction schemes (Section IV-B) against the paper's worked examples.

All three examples in the paper use the counter vector (4, 2, 0, 1) and a
single threshold of 1 (ANE) or 1/4 (ARE/AFE), and all three produce the
prefetch pattern (0, L1, 0, L1).
"""

from hypothesis import given, strategies as st

from repro.prefetchers.base import FillLevel
from repro.prefetchers.pmp import (
    CounterVector,
    extract_afe,
    extract_ane,
    extract_are,
)


def make_vector(counters, bits=5):
    vector = CounterVector(len(counters), bits)
    vector.counters = list(counters)
    return vector


PAPER_VECTOR = [4, 2, 0, 1]


class TestPaperExamples:
    def test_ane_paper_example(self):
        pattern = extract_ane(make_vector(PAPER_VECTOR), t_l1d=1, t_l2c=1)
        assert pattern == {1: FillLevel.L1D, 3: FillLevel.L1D}

    def test_are_paper_example(self):
        # Ratios (excluding trigger): (2/3, 0, 1/3); threshold 1/4.
        pattern = extract_are(make_vector(PAPER_VECTOR), t_l1d=0.25, t_l2c=0.25)
        assert pattern == {1: FillLevel.L1D, 3: FillLevel.L1D}

    def test_afe_paper_example(self):
        # Frequencies: (2/4, 0, 1/4); threshold 1/4.
        pattern = extract_afe(make_vector(PAPER_VECTOR), t_l1d=0.25, t_l2c=0.25)
        assert pattern == {1: FillLevel.L1D, 3: FillLevel.L1D}


class TestTriggerExclusion:
    """The trigger offset (element 0) is never prefetched."""

    def test_afe_skips_index_zero(self):
        pattern = extract_afe(make_vector([10, 10]), t_l1d=0.5, t_l2c=0.1)
        assert 0 not in pattern

    def test_ane_skips_index_zero(self):
        pattern = extract_ane(make_vector([31, 31]), t_l1d=1, t_l2c=1)
        assert 0 not in pattern

    def test_are_skips_index_zero(self):
        pattern = extract_are(make_vector([31, 31]), t_l1d=0.1, t_l2c=0.1)
        assert 0 not in pattern


class TestLevelAssignment:
    def test_afe_two_level_thresholds(self):
        # Defaults: >= 50% -> L1D, >= 15% -> L2C (Table II).
        vector = make_vector([20, 12, 4, 1])
        pattern = extract_afe(vector, t_l1d=0.5, t_l2c=0.15)
        assert pattern == {1: FillLevel.L1D, 2: FillLevel.L2C}

    def test_ane_two_level_thresholds(self):
        vector = make_vector([20, 18, 7, 2])
        pattern = extract_ane(vector, t_l1d=16, t_l2c=5)
        assert pattern == {1: FillLevel.L1D, 2: FillLevel.L2C}

    def test_empty_vector_extracts_nothing(self):
        vector = CounterVector(8, 5)
        assert extract_afe(vector, 0.5, 0.15) == {}
        assert extract_are(vector, 0.5, 0.15) == {}


class TestSchemeContrasts:
    def test_are_depth_limit_on_streams(self):
        """Section V-E2: a stream (uniform counters) starves ARE.

        64 equal counters give each a ratio of 1/63 < 15%, so ARE
        extracts nothing, while AFE sees frequency 100% everywhere.
        """
        stream = make_vector([8] * 64)
        assert extract_are(stream, t_l1d=0.5, t_l2c=0.15) == {}
        afe = extract_afe(stream, t_l1d=0.5, t_l2c=0.15)
        assert len(afe) == 63
        assert all(level == FillLevel.L1D for level in afe.values())

    def test_ane_cold_start(self):
        """Section IV-B: ANE cannot prefetch an offset seen < T times."""
        young = make_vector([2, 2, 0, 0])
        assert extract_ane(young, t_l1d=16, t_l2c=5) == {}
        # AFE sees 100% frequency immediately.
        afe = extract_afe(young, t_l1d=0.5, t_l2c=0.15)
        assert afe == {1: FillLevel.L1D}


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=2, max_size=64))
def test_afe_levels_ordered_by_frequency(counters):
    vector = make_vector([max(counters[0], 1)] + counters[1:])
    pattern = extract_afe(vector, t_l1d=0.5, t_l2c=0.15)
    time = vector.time_counter
    for index, level in pattern.items():
        frequency = vector.counters[index] / time
        if level == FillLevel.L1D:
            assert frequency >= 0.5
        else:
            assert 0.15 <= frequency < 0.5


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=2, max_size=64),
       st.floats(min_value=0.05, max_value=0.45),
       st.floats(min_value=0.5, max_value=1.0))
def test_afe_monotone_in_threshold(counters, low, high):
    """Raising thresholds never adds prefetch targets."""
    vector = make_vector([max(counters[0], 1)] + counters[1:])
    loose = extract_afe(vector, t_l1d=low, t_l2c=low)
    strict = extract_afe(vector, t_l1d=high, t_l2c=high)
    assert set(strict) <= set(loose)
